//! Sharded parallel execution — the workspace's one worker pattern.
//!
//! Every parallel surface in the workspace has the same shape: a list of
//! independent work items fans out across `std::thread::scope` workers,
//! each worker owns a reusable scratch arena, per-worker progress is
//! published as `<prefix>.workerNN.*` obs counters, and the results are
//! stitched back **in input order** so the parallel run is bit-identical
//! to a sequential loop. [`ShardedRunner`] is that pattern extracted
//! once: oracle batch queries, oracle label construction, routing-table
//! construction, batch routing, and the small-world builds all run on
//! it instead of hand-rolling the scope/claim/merge dance.
//!
//! Work is claimed from an atomic cursor in blocks of
//! [`ShardedRunner::min_chunk`] items, so stragglers cannot serialize a
//! run the way fixed pre-chunking can; because results are placed by
//! input index, the claim schedule can never leak into the output.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::decomposition::available_threads;

/// Obs counter naming for a sharded run: workers publish
/// `<prefix>.workerNN.<items>` (items processed) and
/// `<prefix>.workerNN.<units>` (domain-specific work units, e.g.
/// candidates scanned or vertices reached).
#[derive(Clone, Copy, Debug)]
pub struct ShardObs {
    /// Counter prefix, e.g. `"oracle.batch"`.
    pub prefix: &'static str,
    /// Per-worker item counter suffix, e.g. `"pairs"`.
    pub items: &'static str,
    /// Per-worker unit counter suffix, e.g. `"candidates"`.
    pub units: &'static str,
}

impl ShardObs {
    /// Publishes one worker's aggregated counters (no-op unless obs is
    /// enabled at runtime).
    pub fn record(&self, worker: usize, items: u64, units: u64) {
        if !psep_obs::enabled() {
            return;
        }
        psep_obs::counter(&format!("{}.worker{worker:02}.{}", self.prefix, self.items)).add(items);
        psep_obs::counter(&format!("{}.worker{worker:02}.{}", self.prefix, self.units)).add(units);
    }

    /// Per-worker distribution handles for one sharded run:
    /// `<prefix>.workerNN.<units>` (work units per item) and
    /// `<prefix>.workerNN.latency_ns` (wall time per item). Snapshots
    /// roll these up into `<prefix>.<units>` / `<prefix>.latency_ns`
    /// ([`psep_obs::Snapshot::rollup_workers`]); because histogram merge
    /// is order-independent, the rolled-up distributions are identical
    /// at every thread count.
    pub fn worker_hists(&self, worker: usize) -> WorkerHists {
        if !psep_obs::enabled() {
            return WorkerHists {
                units: None,
                latency: None,
            };
        }
        WorkerHists {
            units: Some(psep_obs::histogram(&format!(
                "{}.worker{worker:02}.{}",
                self.prefix, self.units
            ))),
            latency: Some(psep_obs::histogram(&format!(
                "{}.worker{worker:02}.latency_ns",
                self.prefix
            ))),
        }
    }
}

/// Histogram handles held by one sharded worker (see
/// [`ShardObs::worker_hists`]); `None` inside when recording is
/// disabled, making construction and recording free.
#[derive(Clone, Copy, Debug)]
pub struct WorkerHists {
    units: Option<&'static psep_obs::Histogram>,
    latency: Option<&'static psep_obs::Histogram>,
}

impl WorkerHists {
    /// Records one item's work units and, when `start` came from
    /// [`psep_obs::now_if_enabled`], its wall time.
    #[inline]
    pub fn record(&self, units: u64, start: Option<std::time::Instant>) {
        if let Some(h) = self.units {
            h.record(units);
        }
        if let (Some(h), Some(t0)) = (self.latency, start) {
            h.record_elapsed(t0);
        }
    }
}

/// A reusable sharded executor with a fixed thread budget.
///
/// The work function maps one item to `(result, units)`; [`run`] returns
/// all results in input order plus the summed units, identically at
/// every thread count. `threads == 1` (or a single-item list) is the
/// pure sequential path — no threads are spawned.
///
/// [`run`]: ShardedRunner::run
#[derive(Clone, Copy, Debug)]
pub struct ShardedRunner {
    threads: usize,
    min_chunk: usize,
}

impl Default for ShardedRunner {
    fn default() -> Self {
        ShardedRunner::new(0)
    }
}

impl ShardedRunner {
    /// A runner with `threads` workers (`0` means
    /// [`available_threads()`], which honors `PSEP_THREADS`).
    pub fn new(threads: usize) -> Self {
        ShardedRunner {
            threads: if threads == 0 {
                available_threads()
            } else {
                threads
            },
            min_chunk: 1,
        }
    }

    /// Sets the claim granularity: the minimum items per worker, and the
    /// block size workers claim from the shared cursor (default 1).
    /// Below it, extra threads cost more to start than they save.
    pub fn min_chunk(mut self, min_chunk: usize) -> Self {
        self.min_chunk = min_chunk.max(1);
        self
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workers a run over `items` items would use:
    /// `threads.min(items.div_ceil(min_chunk)).max(1)`.
    pub fn worker_count(&self, items: usize) -> usize {
        self.threads.min(items.div_ceil(self.min_chunk)).max(1)
    }

    /// [`run`](Self::run) for scratchless work functions.
    pub fn map<I, T>(
        &self,
        items: &[I],
        obs: Option<&ShardObs>,
        work: impl Fn(&I) -> (T, u64) + Sync,
    ) -> (Vec<T>, u64)
    where
        I: Sync,
        T: Send,
    {
        let mut scratches = vec![(); self.worker_count(items.len())];
        self.run(items, obs, &mut scratches, |_, item| work(item))
    }

    /// Maps every item through `work`, fanning out across at most
    /// `scratches.len()` workers (one scratch per worker, reusable
    /// across calls), and returns `(results in input order, summed
    /// units)`. With one worker the items are processed in order on the
    /// calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `scratches` is empty, or if a worker panics.
    pub fn run<I, S, T>(
        &self,
        items: &[I],
        obs: Option<&ShardObs>,
        scratches: &mut [S],
        work: impl Fn(&mut S, &I) -> (T, u64) + Sync,
    ) -> (Vec<T>, u64)
    where
        I: Sync,
        S: Send,
        T: Send,
    {
        assert!(!scratches.is_empty(), "ShardedRunner needs >= 1 scratch");
        let workers = self.worker_count(items.len()).min(scratches.len());
        if workers <= 1 {
            let scratch = &mut scratches[0];
            let mut units = 0u64;
            let out: Vec<T> = items
                .iter()
                .map(|item| {
                    let (t, u) = work(scratch, item);
                    units += u;
                    t
                })
                .collect();
            if let Some(o) = obs {
                o.record(0, items.len() as u64, units);
            }
            return (out, units);
        }
        let block = self.min_chunk;
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        let mut total_units = 0u64;
        std::thread::scope(|s| {
            let (cursor_ref, work_ref) = (&cursor, &work);
            let handles: Vec<_> = scratches
                .iter_mut()
                .take(workers)
                .map(|scratch| {
                    s.spawn(move || {
                        let mut claimed: Vec<(usize, Vec<T>)> = Vec::new();
                        let (mut count, mut units) = (0u64, 0u64);
                        loop {
                            let start = cursor_ref.fetch_add(block, Ordering::Relaxed);
                            if start >= items.len() {
                                break;
                            }
                            let end = items.len().min(start + block);
                            let out: Vec<T> = items[start..end]
                                .iter()
                                .map(|item| {
                                    let (t, u) = work_ref(scratch, item);
                                    units += u;
                                    t
                                })
                                .collect();
                            count += (end - start) as u64;
                            claimed.push((start, out));
                        }
                        (claimed, count, units)
                    })
                })
                .collect();
            for (wi, handle) in handles.into_iter().enumerate() {
                let (claimed, count, units) = handle.join().expect("sharded worker panicked");
                if let Some(o) = obs {
                    o.record(wi, count, units);
                }
                total_units += units;
                for (start, out) in claimed {
                    for (offset, t) in out.into_iter().enumerate() {
                        slots[start + offset] = Some(t);
                    }
                }
            }
        });
        let results = slots
            .into_iter()
            .map(|t| t.expect("unclaimed work item"))
            .collect();
        (results, total_units)
    }

    /// [`run`](Self::run) with a locality schedule: each worker
    /// stable-sorts the indices of its claimed block by `key` and
    /// processes items in that order, so items sharing a key (e.g. batch
    /// queries from the same source vertex) run back-to-back and keep
    /// their working set hot in cache. Results are still placed at their
    /// original input offsets, so the output is bit-identical to
    /// [`run`](Self::run) — the schedule can only change *when* an item
    /// runs, never what it returns or where it lands.
    ///
    /// # Panics
    ///
    /// Panics if `scratches` is empty, or if a worker panics.
    pub fn run_keyed<I, S, T, K>(
        &self,
        items: &[I],
        obs: Option<&ShardObs>,
        scratches: &mut [S],
        key: impl Fn(&I) -> K + Sync,
        work: impl Fn(&mut S, &I) -> (T, u64) + Sync,
    ) -> (Vec<T>, u64)
    where
        I: Sync,
        S: Send,
        T: Send,
        K: Ord,
    {
        assert!(!scratches.is_empty(), "ShardedRunner needs >= 1 scratch");
        let workers = self.worker_count(items.len()).min(scratches.len());
        let mut slots: Vec<Option<T>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        let mut total_units = 0u64;
        if workers <= 1 {
            let scratch = &mut scratches[0];
            let mut order: Vec<usize> = (0..items.len()).collect();
            order.sort_by_key(|&i| key(&items[i]));
            for i in order {
                let (t, u) = work(scratch, &items[i]);
                total_units += u;
                slots[i] = Some(t);
            }
            if let Some(o) = obs {
                o.record(0, items.len() as u64, total_units);
            }
        } else {
            let block = self.min_chunk;
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|s| {
                let (cursor_ref, key_ref, work_ref) = (&cursor, &key, &work);
                let handles: Vec<_> = scratches
                    .iter_mut()
                    .take(workers)
                    .map(|scratch| {
                        s.spawn(move || {
                            let mut claimed: Vec<(usize, T)> = Vec::new();
                            let (mut count, mut units) = (0u64, 0u64);
                            let mut order: Vec<usize> = Vec::with_capacity(block);
                            loop {
                                let start = cursor_ref.fetch_add(block, Ordering::Relaxed);
                                if start >= items.len() {
                                    break;
                                }
                                let end = items.len().min(start + block);
                                order.clear();
                                order.extend(start..end);
                                order.sort_by_key(|&i| key_ref(&items[i]));
                                for &i in &order {
                                    let (t, u) = work_ref(scratch, &items[i]);
                                    units += u;
                                    claimed.push((i, t));
                                }
                                count += (end - start) as u64;
                            }
                            (claimed, count, units)
                        })
                    })
                    .collect();
                for (wi, handle) in handles.into_iter().enumerate() {
                    let (claimed, count, units) = handle.join().expect("sharded worker panicked");
                    if let Some(o) = obs {
                        o.record(wi, count, units);
                    }
                    total_units += units;
                    for (i, t) in claimed {
                        slots[i] = Some(t);
                    }
                }
            });
        }
        let results = slots
            .into_iter()
            .map(|t| t.expect("unclaimed work item"))
            .collect();
        (results, total_units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_stay_in_input_order_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let runner = ShardedRunner::new(threads).min_chunk(7);
            let (out, units) = runner.map(&items, None, |&x| (x * x, 1));
            assert_eq!(out, expected, "threads = {threads}");
            assert_eq!(units, 1000, "threads = {threads}");
        }
    }

    #[test]
    fn scratches_are_reused_and_bound_worker_count() {
        let items: Vec<usize> = (0..100).collect();
        let runner = ShardedRunner::new(8);
        // two scratches => at most two workers, every item touches one
        let mut scratches = vec![0usize; 2];
        let (out, _) = runner.run(&items, None, &mut scratches, |s, &x| {
            *s += 1;
            (x, 0)
        });
        assert_eq!(out, items);
        assert_eq!(scratches.iter().sum::<usize>(), 100);
    }

    #[test]
    fn worker_count_respects_min_chunk() {
        let runner = ShardedRunner::new(8).min_chunk(512);
        assert_eq!(runner.worker_count(0), 1);
        assert_eq!(runner.worker_count(511), 1);
        assert_eq!(runner.worker_count(513), 2);
        assert_eq!(runner.worker_count(1 << 20), 8);
        assert_eq!(ShardedRunner::new(1).worker_count(1 << 20), 1);
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(ShardedRunner::new(0).threads() >= 1);
        assert!(ShardedRunner::default().threads() >= 1);
    }

    #[test]
    fn empty_input_is_fine() {
        let runner = ShardedRunner::new(4);
        let (out, units) = runner.map(&[] as &[u32], None, |&x| (x, 1));
        assert!(out.is_empty());
        assert_eq!(units, 0);
    }

    #[test]
    fn run_keyed_matches_run_at_every_thread_count() {
        // keys deliberately scrambled so the schedule reorders work
        let items: Vec<u64> = (0..1000).map(|i| (i * 7919) % 1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 4, 8] {
            let runner = ShardedRunner::new(threads).min_chunk(13);
            let mut scratches = vec![(); runner.worker_count(items.len())];
            let (out, units) =
                runner.run_keyed(&items, None, &mut scratches, |&x| x, |_, &x| (x * x + 1, 1));
            assert_eq!(out, expected, "threads = {threads}");
            assert_eq!(units, 1000, "threads = {threads}");
        }
    }

    #[test]
    fn run_keyed_processes_each_block_in_key_order() {
        use std::sync::Mutex;
        let items: Vec<u64> = vec![5, 3, 9, 1, 8, 2, 7, 0, 6, 4];
        let seen = Mutex::new(Vec::new());
        let runner = ShardedRunner::new(1).min_chunk(4);
        let mut scratches = vec![()];
        let (out, _) = runner.run_keyed(
            &items,
            None,
            &mut scratches,
            |&x| x,
            |_, &x| {
                seen.lock().unwrap().push(x);
                (x, 0)
            },
        );
        // single worker: the whole input is one block, processed sorted
        assert_eq!(*seen.lock().unwrap(), (0..10).collect::<Vec<u64>>());
        // ...but results land at their original offsets
        assert_eq!(out, items);
    }

    #[test]
    fn run_keyed_empty_input_is_fine() {
        let runner = ShardedRunner::new(4);
        let mut scratches = vec![()];
        let (out, units) =
            runner.run_keyed(&[] as &[u32], None, &mut scratches, |&x| x, |_, &x| (x, 1));
        assert!(out.is_empty());
        assert_eq!(units, 0);
    }
}
