//! Property tests for [`SepPath`] arithmetic: positions are strict
//! prefix sums, `along` is a metric on indices, and paths extracted from
//! shortest-path trees always satisfy `cost == distance`.

use proptest::prelude::*;
use psep_core::separator::SepPath;
use psep_graph::dijkstra::dijkstra;
use psep_graph::generators::{randomize_weights, trees};
use psep_graph::NodeId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn positions_are_strictly_increasing(n in 2usize..40, w in 1u64..30, seed in any::<u64>()) {
        let g = randomize_weights(&trees::path(n), 1, w, seed);
        let verts: Vec<NodeId> = g.nodes().collect();
        let p = SepPath::new(&g, verts);
        for i in 1..p.len() {
            prop_assert!(p.position(i) > p.position(i - 1));
        }
        prop_assert_eq!(p.cost(), p.position(p.len() - 1));
    }

    #[test]
    fn along_is_symmetric_and_triangle(n in 3usize..30, seed in any::<u64>()) {
        let g = randomize_weights(&trees::path(n), 1, 9, seed);
        let verts: Vec<NodeId> = g.nodes().collect();
        let p = SepPath::new(&g, verts);
        for i in 0..p.len() {
            for j in 0..p.len() {
                prop_assert_eq!(p.along(i, j), p.along(j, i));
                for k in 0..p.len() {
                    prop_assert!(p.along(i, k) <= p.along(i, j) + p.along(j, k));
                }
            }
        }
    }

    /// Root paths of shortest-path trees build SepPaths whose cost equals
    /// the Dijkstra distance (the P1 core fact).
    #[test]
    fn sp_tree_paths_cost_equals_distance(n in 5usize..50, seed in any::<u64>()) {
        let g = trees::random_weighted_tree(n, 12, seed);
        let sp = dijkstra(&g, &[NodeId(0)]);
        for v in g.nodes() {
            let path = sp.path_to(v).unwrap();
            let sep = SepPath::new(&g, path);
            prop_assert_eq!(sep.cost(), sp.dist(v).unwrap());
        }
    }
}
