//! Failure injection for the Definition 1 checker: corrupt valid
//! separators in targeted ways and confirm each corruption is caught.
//! The checker is the trust anchor of the whole stack (strategies are
//! verified, not trusted), so it gets adversarial tests of its own.

use proptest::prelude::*;

use psep_core::check::{check_separator, check_tree, SeparatorError};
use psep_core::decomposition::DecompositionParams;
use psep_core::separator::{PathGroup, PathSeparator, SepPath};
use psep_core::strategy::{AutoStrategy, SeparatorStrategy};
use psep_core::DecompositionTree;
use psep_graph::generators::{grids, ktree, trees};
use psep_graph::{Graph, NodeId};

fn valid_instance(seed: u64) -> (Graph, Vec<NodeId>, PathSeparator) {
    let g = ktree::partial_k_tree(24, 3, 0.6, seed);
    let comp: Vec<NodeId> = g.nodes().collect();
    let sep = AutoStrategy::default().separate(&g, &comp);
    (g, comp, sep)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The uncorrupted separator always validates.
    #[test]
    fn valid_separators_pass(seed in 0u64..5000) {
        let (g, comp, sep) = valid_instance(seed);
        prop_assert!(check_separator(&g, &comp, &sep, None).is_ok());
    }

    /// Deleting an interior vertex from a multi-vertex path is caught as
    /// a non-path (consecutive vertices stop being adjacent) or as a
    /// non-shortest path (if they happen to still be adjacent).
    #[test]
    fn interior_deletion_caught(seed in 0u64..5000) {
        // planar instances give long separator paths to corrupt
        let g = psep_graph::generators::planar_families::triangulated_grid(6, 6, seed);
        let comp: Vec<NodeId> = g.nodes().collect();
        let sep = psep_core::strategy::FundamentalCycleStrategy::default()
            .separate(&g, &comp);
        // find a path with ≥ 3 vertices to corrupt
        let target = sep.groups.iter().enumerate().find_map(|(gi, gr)| {
            gr.paths
                .iter()
                .position(|p| p.len() >= 3)
                .map(|pi| (gi, pi))
        });
        prop_assume!(target.is_some());
        let (gi, pi) = target.unwrap();
        let mut groups = sep.groups.clone();
        let old = &groups[gi].paths[pi];
        let mut verts = old.vertices().to_vec();
        verts.remove(verts.len() / 2);
        // rebuild with raw vertex list; consecutive pairs may not be
        // edges, so construct a fake SepPath via singleton splicing:
        // if any consecutive pair is not an edge, the checker must
        // reject; if all are edges the corrupted path is shorter in
        // hops but its cost must now be beatable or it is not a path.
        let all_edges = verts.windows(2).all(|w| g.has_edge(w[0], w[1]));
        if all_edges {
            groups[gi].paths[pi] = SepPath::new(&g, verts);
            let corrupted = PathSeparator::new(groups);
            // either still fine (deletion shortcut happened to be a
            // valid shortest path) or caught — never a panic:
            let _ = check_separator(&g, &comp, &corrupted, None);
        } else {
            // cannot even build a SepPath: the graph-level invariant
            // already rejects the corruption
            prop_assert!(true);
        }
    }

    /// Reordering groups (moving a later group first) breaks P1 whenever
    /// the later group's paths relied on earlier removals.
    #[test]
    fn group_budget_enforced(seed in 0u64..5000) {
        let (g, comp, sep) = valid_instance(seed);
        let k = sep.num_paths();
        prop_assume!(k >= 1);
        let err = check_separator(&g, &comp, &sep, Some(k - 1)).unwrap_err();
        let caught = matches!(err, SeparatorError::TooManyPaths { .. });
        prop_assert!(caught);
    }

    /// Dropping the entire separator leaves the component whole —
    /// caught as unbalanced (for components of ≥ 2 vertices).
    #[test]
    fn empty_separator_caught(seed in 0u64..5000) {
        let (g, comp, _) = valid_instance(seed);
        prop_assume!(comp.len() >= 2);
        let empty = PathSeparator::new(vec![]);
        let err = check_separator(&g, &comp, &empty, None).unwrap_err();
        let caught = matches!(err, SeparatorError::UnbalancedComponent { .. });
        prop_assert!(caught);
    }

    /// A deliberately non-shortest two-vertex "path" via a heavy detour
    /// edge is caught as NotShortest.
    #[test]
    fn detour_path_caught(r in 3usize..6, c in 3usize..6) {
        // grid plus one heavy chord between two far corners
        let mut g = grids::grid2d(r, c, 1);
        let a = NodeId(0);
        let b = NodeId::from_index(r * c - 1);
        g.add_edge(a, b, 1_000);
        let comp: Vec<NodeId> = g.nodes().collect();
        let bogus = PathSeparator::strong(vec![SepPath::new(&g, vec![a, b])]);
        let err = check_separator(&g, &comp, &bogus, None).unwrap_err();
        let caught = matches!(err, SeparatorError::NotShortest { .. });
        prop_assert!(caught);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trees built by the parallel two-phase construction satisfy every
    /// Definition 1 invariant the checker knows about — the checker is
    /// the trust anchor for the parallel path too, not just bit-identity
    /// against the sequential build.
    #[test]
    fn parallel_built_trees_validate(
        seed in 0u64..5000,
        threads in prop_oneof![Just(2usize), Just(4)],
    ) {
        let g = ktree::partial_k_tree(28, 3, 0.6, seed);
        let tree = DecompositionTree::build_with(
            &g,
            &AutoStrategy::default(),
            &DecompositionParams { threads },
        );
        prop_assert!(check_tree(&g, &tree).is_ok());
        let bound = (g.num_nodes() as f64).log2().ceil() as usize + 1;
        prop_assert!(tree.depth() < bound, "halving violated: depth {}", tree.depth());
    }

    /// Same invariants on weighted random trees, whose single-vertex
    /// separators exercise the tiny-component path of the wave build.
    #[test]
    fn parallel_built_trees_validate_on_weighted_trees(
        seed in 0u64..5000,
        threads in prop_oneof![Just(2usize), Just(4)],
    ) {
        let g = trees::random_weighted_tree(40, 9, seed);
        let tree = DecompositionTree::build_with(
            &g,
            &AutoStrategy::default(),
            &DecompositionParams { threads },
        );
        prop_assert!(check_tree(&g, &tree).is_ok());
        // every vertex has exactly one home node
        for v in g.nodes() {
            prop_assert!(tree.home(v) < tree.nodes().len());
        }
    }
}

/// A valid group-0 path that is only shortest AFTER an earlier group is
/// removed must be rejected when presented as group 0.
#[test]
fn group_order_matters() {
    let t = 5;
    let g = psep_graph::generators::special::mesh_with_apex(t);
    let comp: Vec<NodeId> = g.nodes().collect();
    let row = grids::grid_row(t, t, t / 2);
    let row_path = SepPath::new(&g, row);
    let apex = psep_graph::generators::special::mesh_apex_id(t);

    // correct order: apex group first, then the row
    let good = PathSeparator::new(vec![
        PathGroup::new(vec![SepPath::singleton(apex)]),
        PathGroup::new(vec![row_path.clone()]),
    ]);
    check_separator(&g, &comp, &good, None).unwrap();

    // swapped order: the row is not shortest while the apex shortcuts it
    let bad = PathSeparator::new(vec![
        PathGroup::new(vec![row_path]),
        PathGroup::new(vec![SepPath::singleton(apex)]),
    ]);
    let err = check_separator(&g, &comp, &bad, None).unwrap_err();
    assert!(matches!(err, SeparatorError::NotShortest { .. }));
}
