//! Step 2 of the paper's proof, observed empirically on genus-1 inputs:
//! the first separator group of a torus plays the role of Lemma 2's
//! genus-reducing vortex-paths — after removing it, the residual
//! components behave like planar graphs (the fundamental-cycle strategy
//! halves every one of them with at most 3 root paths, Thorup-style).

use psep_core::check::check_separator;
use psep_core::strategy::{FundamentalCycleStrategy, IterativeStrategy, SeparatorStrategy};
use psep_core::DecompositionTree;
use psep_graph::components::components;
use psep_graph::generators::grids;
use psep_graph::{NodeId, NodeMask, SubgraphView};

#[test]
fn torus_first_group_reduces_to_planar_behaviour() {
    let g = grids::torus2d(10, 10);
    let comp: Vec<NodeId> = g.nodes().collect();
    let sep = IterativeStrategy::default().separate(&g, &comp);
    check_separator(&g, &comp, &sep, None).unwrap();

    // the torus needs ≥ 2 groups (no single fundamental cycle of a
    // shortest-path tree halves it — the genus must be cut first)
    assert!(
        sep.num_groups() >= 2,
        "expected a sequential separator on the torus, got {} group(s)",
        sep.num_groups()
    );

    // after removing group 0 only, each residual component is handled
    // by the planar machinery with Thorup's ≤ 3 paths at every level
    let mut mask = NodeMask::from_nodes(g.num_nodes(), comp.iter().copied());
    mask.remove_all(sep.groups[0].vertices());
    let view = SubgraphView::new(&g, &mask);
    for residual_comp in components(&view) {
        if residual_comp.len() < 4 {
            continue;
        }
        let strat = FundamentalCycleStrategy::default();
        let tree_sep = strat.separate(&g, &residual_comp);
        check_separator(&g, &residual_comp, &tree_sep, None).unwrap();
        assert!(
            tree_sep.num_paths() <= 3,
            "residual component of size {} needed {} paths",
            residual_comp.len(),
            tree_sep.num_paths()
        );
    }
}

#[test]
fn full_torus_decomposition_has_bounded_k() {
    for (r, c) in [(8, 8), (12, 9), (9, 14)] {
        let g = grids::torus2d(r, c);
        let tree = DecompositionTree::build(&g, &IterativeStrategy::default());
        psep_core::check::check_tree(&g, &tree).unwrap();
        // genus-1: O(1) paths per node (generous constant for the greedy)
        assert!(
            tree.max_paths_per_node() <= 10,
            "{r}×{c} torus used {} paths",
            tree.max_paths_per_node()
        );
    }
}
