//! Label persistence: Theorem 2's labels are the shippable artifact of a
//! distributed deployment; they serialize and reload without losing any
//! query precision.

use psep_core::strategy::AutoStrategy;
use psep_core::DecompositionTree;
use psep_graph::generators::grids;
use psep_oracle::label::build_labels;
use psep_oracle::oracle::DistanceOracle;

#[test]
fn labels_roundtrip_through_serde() {
    let g = grids::grid2d(7, 7, 1);
    let tree = DecompositionTree::build(&g, &AutoStrategy::default());
    let labels = build_labels(&g, &tree, 0.25, 1);

    let json = serde_json::to_string(&labels).expect("serialize");
    let reloaded: Vec<psep_oracle::label::DistanceLabel> =
        serde_json::from_str(&json).expect("deserialize");
    assert_eq!(labels, reloaded);

    // a reloaded oracle answers identically
    let a = DistanceOracle::from_labels(labels, 0.25);
    let b = DistanceOracle::from_labels(reloaded, 0.25);
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(a.query(u, v), b.query(u, v));
        }
    }
}

#[test]
fn single_label_is_compact_json() {
    let g = grids::grid2d(5, 5, 1);
    let tree = DecompositionTree::build(&g, &AutoStrategy::default());
    let labels = build_labels(&g, &tree, 0.5, 1);
    let one = serde_json::to_vec(&labels[0]).expect("serialize");
    // a single label serializes to a few hundred bytes, not kilobytes —
    // the point of Theorem 2's O(k/ε · log n) label size
    assert!(one.len() < 4096, "label json is {} bytes", one.len());
}
