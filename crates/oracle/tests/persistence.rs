//! Label persistence: Theorem 2's labels are the shippable artifact of a
//! distributed deployment; they serialize and reload without losing any
//! query precision.

use psep_core::strategy::AutoStrategy;
use psep_core::DecompositionTree;
use psep_graph::generators::grids;
use psep_oracle::label::build_labels;
use psep_oracle::oracle::DistanceOracle;

#[test]
fn labels_roundtrip_through_serde() {
    let g = grids::grid2d(7, 7, 1);
    let tree = DecompositionTree::build(&g, &AutoStrategy::default());
    let labels = build_labels(&g, &tree, 0.25, 1);

    let json = serde_json::to_string(&labels).expect("serialize");
    let reloaded: Vec<psep_oracle::label::DistanceLabel> =
        serde_json::from_str(&json).expect("deserialize");
    assert_eq!(labels, reloaded);

    // a reloaded oracle answers identically
    let a = DistanceOracle::from_labels(labels, 0.25);
    let b = DistanceOracle::from_labels(reloaded, 0.25);
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(a.query(u, v), b.query(u, v));
        }
    }
}

#[test]
fn binary_wire_lifecycle_through_the_filesystem() {
    // the full serving lifecycle: build once, ship both artifacts to
    // disk, reload in a fresh process image, serve identically
    let g = grids::grid2d(7, 7, 1);
    let tree = DecompositionTree::build(&g, &AutoStrategy::default());
    let oracle = psep_oracle::build_oracle(&g, &tree, psep_oracle::OracleParams::default());

    let dir = std::env::temp_dir().join(format!("psep-wire-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let labels_path = dir.join("grid.psep-labels");
    let tree_path = dir.join("grid.psep-tree");

    oracle.save_to_path(&labels_path).unwrap();
    tree.save_to_path(&tree_path).unwrap();

    let oracle2 = DistanceOracle::load_from_path(&labels_path).unwrap();
    let tree2 = DecompositionTree::load_from_path(&tree_path).unwrap();
    assert_eq!(tree2, tree);
    assert_eq!(oracle2.epsilon(), oracle.epsilon());
    for u in g.nodes() {
        for v in g.nodes() {
            assert_eq!(oracle2.query(u, v), oracle.query(u, v));
        }
    }
    // labels rebuilt from the reloaded tree match the shipped ones
    let rebuilt = psep_oracle::build_oracle(&g, &tree2, psep_oracle::OracleParams::default());
    assert_eq!(rebuilt.flat_labels(), oracle2.flat_labels());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wire_is_denser_than_json() {
    let g = grids::grid2d(7, 7, 1);
    let tree = DecompositionTree::build(&g, &AutoStrategy::default());
    let labels = build_labels(&g, &tree, 0.25, 1);
    let json = serde_json::to_string(&labels).unwrap();
    let oracle = DistanceOracle::from_labels(labels, 0.25);
    let mut wire = Vec::new();
    oracle.save(&mut wire).unwrap();
    assert!(
        wire.len() * 4 < json.len(),
        "wire {} not ≪ json {}",
        wire.len(),
        json.len()
    );
}

#[test]
fn single_label_is_compact_json() {
    let g = grids::grid2d(5, 5, 1);
    let tree = DecompositionTree::build(&g, &AutoStrategy::default());
    let labels = build_labels(&g, &tree, 0.5, 1);
    let one = serde_json::to_vec(&labels[0]).expect("serialize");
    // a single label serializes to a few hundred bytes, not kilobytes —
    // the point of Theorem 2's O(k/ε · log n) label size
    assert!(one.len() < 4096, "label json is {} bytes", one.len());
}
