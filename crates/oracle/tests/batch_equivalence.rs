//! `query_many` is observationally identical to a sequential `query`
//! loop on every generator family the paper's experiments cover, at
//! every thread count.

use psep_core::strategy::AutoStrategy;
use psep_core::DecompositionTree;
use psep_graph::generators::grids;
use psep_graph::{Graph, NodeId};
use psep_oracle::{build_oracle, BatchQueryEngine, OracleParams};
use psep_testkit::{equivalence_families as families, random_pairs};

#[test]
fn query_many_equals_sequential_on_every_family() {
    for (name, g) in families() {
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let oracle = build_oracle(
            &g,
            &tree,
            OracleParams {
                epsilon: 0.25,
                threads: 1,
            },
        );
        let pairs = random_pairs(g.num_nodes(), 400, 0xBA7C4 ^ g.num_nodes() as u64);
        let sequential: Vec<_> = pairs.iter().map(|&(u, v)| oracle.query(u, v)).collect();
        assert_eq!(oracle.query_many(&pairs), sequential, "family {name}");
        for threads in [1usize, 2, 3, 5, 8] {
            let engine = BatchQueryEngine::new(threads).min_chunk(32);
            assert_eq!(
                engine.run(&oracle, &pairs),
                sequential,
                "family {name} at {threads} threads"
            );
            assert_eq!(
                engine.try_run(&oracle, &pairs).unwrap(),
                sequential,
                "family {name} try_run at {threads} threads"
            );
        }
    }
}

#[test]
fn batch_preserves_input_order_with_duplicates_and_self_pairs() {
    let g = grids::grid2d(6, 6, 1);
    let tree = DecompositionTree::build(&g, &AutoStrategy::default());
    let oracle = build_oracle(&g, &tree, OracleParams::default());
    // duplicates, reversals, and self-pairs must come back in slot order
    let mut pairs = Vec::new();
    for i in 0..36u32 {
        pairs.push((NodeId(i), NodeId((i * 7) % 36)));
        pairs.push((NodeId((i * 7) % 36), NodeId(i)));
        pairs.push((NodeId(i), NodeId(i)));
    }
    let sequential: Vec<_> = pairs.iter().map(|&(u, v)| oracle.query(u, v)).collect();
    let batched = BatchQueryEngine::new(4).min_chunk(8).run(&oracle, &pairs);
    assert_eq!(batched, sequential);
    for (i, &(u, v)) in pairs.iter().enumerate() {
        if u == v {
            assert_eq!(batched[i], Some(0));
        }
    }
}

#[test]
fn batch_on_disconnected_graph_returns_none_consistently() {
    let mut g = Graph::new(8);
    for i in 0..3u32 {
        g.add_edge(NodeId(i), NodeId(i + 1), 2);
    }
    for i in 4..7u32 {
        g.add_edge(NodeId(i), NodeId(i + 1), 3);
    }
    let tree = DecompositionTree::build(&g, &AutoStrategy::default());
    let oracle = build_oracle(&g, &tree, OracleParams::default());
    let pairs: Vec<(NodeId, NodeId)> = (0..8u32)
        .flat_map(|u| (0..8u32).map(move |v| (NodeId(u), NodeId(v))))
        .collect();
    let sequential: Vec<_> = pairs.iter().map(|&(u, v)| oracle.query(u, v)).collect();
    assert_eq!(oracle.query_many(&pairs), sequential);
    // cross-component pairs really are None
    assert_eq!(oracle.query(NodeId(0), NodeId(5)), None);
    assert!(sequential.iter().any(|a| a.is_none()));
}
