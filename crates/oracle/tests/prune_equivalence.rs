//! The bound-pruned merge-join is *exact*: on every generator family
//! and on random graphs, the pruned production path returns the same
//! answer — and the same witness (winning key and portal pair) — as the
//! unpruned reference scan, while touching no more candidates. The
//! locality-sorted batch engine must agree with the sequential
//! input-order loop at every thread count.

use proptest::prelude::*;

use psep_core::strategy::AutoStrategy;
use psep_core::DecompositionTree;
use psep_graph::Graph;
use psep_oracle::{build_oracle, BatchQueryEngine, DistanceOracle, JoinStats, OracleParams};
use psep_testkit::families::ALL_FAMILIES;
use psep_testkit::{arb_graph, random_pairs, THREAD_COUNTS};

const SEED: u64 = 20060722;
const EPSILON: f64 = 0.25;

fn build(g: &Graph) -> (DecompositionTree, DistanceOracle<'static>) {
    let tree = DecompositionTree::build(g, &AutoStrategy::default());
    let oracle = build_oracle(
        g,
        &tree,
        OracleParams {
            epsilon: EPSILON,
            threads: 1,
        },
    );
    (tree, oracle)
}

#[test]
fn pruned_join_is_exact_on_every_family_at_every_thread_count() {
    for fam in ALL_FAMILIES {
        let g = fam.make(150, SEED);
        let (_tree, oracle) = build(&g);
        let pairs = random_pairs(g.num_nodes(), 500, SEED ^ 0x9);

        let mut pruned_total = JoinStats::default();
        let mut unpruned_total = JoinStats::default();
        let mut answers = Vec::with_capacity(pairs.len());
        for &(u, v) in &pairs {
            let (a, ps) = oracle.query_with_stats(u, v);
            let (b, us) = oracle.query_unpruned(u, v);
            assert_eq!(a, b, "{}: answer diverges for {u:?}->{v:?}", fam.name());
            assert!(
                ps.scanned <= us.scanned,
                "{}: pruned scan {} exceeds unpruned {} for {u:?}->{v:?}",
                fam.name(),
                ps.scanned,
                us.scanned
            );
            assert_eq!(
                oracle.explain(u, v),
                oracle.explain_unpruned(u, v),
                "{}: witness diverges for {u:?}->{v:?}",
                fam.name()
            );
            pruned_total.merge(ps);
            unpruned_total.merge(us);
            answers.push(a);
        }
        // In aggregate the bound must actually bite.
        assert!(
            pruned_total.scanned < unpruned_total.scanned,
            "{}: pruning saved nothing ({} vs {})",
            fam.name(),
            pruned_total.scanned,
            unpruned_total.scanned
        );
        // The reference scan never prunes, by definition.
        assert_eq!(unpruned_total.pruned_keys, 0, "{}", fam.name());
        assert_eq!(unpruned_total.pruned_portals, 0, "{}", fam.name());

        // Locality-sorted batches return input-order results identical
        // to the sequential loop at 1, 2, and 4 workers.
        for threads in THREAD_COUNTS {
            let engine = BatchQueryEngine::new(threads).min_chunk(32);
            assert_eq!(
                engine.run(&oracle, &pairs),
                answers,
                "{}: batch diverges at {threads} threads",
                fam.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Exactness is not a property of the curated families: on random
    /// trees, k-trees, and partial k-trees the pruned join still
    /// returns the unpruned answer and witness, and sorted batches
    /// still match the sequential loop.
    #[test]
    fn pruned_join_is_exact_on_random_graphs(
        g in arb_graph(),
        seed in any::<u64>(),
        threads_i in 0usize..THREAD_COUNTS.len(),
    ) {
        let (_tree, oracle) = build(&g);
        let pairs = random_pairs(g.num_nodes(), 120, seed);
        let mut answers = Vec::with_capacity(pairs.len());
        for &(u, v) in &pairs {
            let (a, ps) = oracle.query_with_stats(u, v);
            let (b, us) = oracle.query_unpruned(u, v);
            prop_assert_eq!(a, b);
            prop_assert!(ps.scanned <= us.scanned);
            prop_assert_eq!(oracle.explain(u, v), oracle.explain_unpruned(u, v));
            answers.push(a);
        }
        let engine = BatchQueryEngine::new(THREAD_COUNTS[threads_i]).min_chunk(16);
        prop_assert_eq!(engine.run(&oracle, &pairs), answers);
    }
}
