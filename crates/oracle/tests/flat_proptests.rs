//! Property tests for the flat label arena and the `psep-labels/v1`
//! wire format: `FlatLabels` is a lossless re-encoding of
//! `Vec<DistanceLabel>`, the wire round-trip is bit-exact, and any
//! corrupted byte is rejected.

use proptest::prelude::*;
use psep_core::strategy::AutoStrategy;
use psep_core::DecompositionTree;
use psep_graph::generators::{grids, ktree, randomize_weights, trees};
use psep_graph::Graph;
use psep_oracle::label::build_labels;
use psep_oracle::oracle::DistanceOracle;
use psep_oracle::wire::{decode_labels, encode_labels};
use psep_oracle::FlatLabels;

/// A small graph from one of the generator families, chosen by `pick`.
fn make_graph(pick: u8, size: usize, seed: u64) -> Graph {
    match pick % 4 {
        0 => grids::grid2d(size.max(2), size.max(2), 1),
        1 => randomize_weights(&grids::grid2d(size.max(2), size.max(2), 1), 1, 12, seed),
        2 => trees::random_weighted_tree(size * size + 2, 9, seed),
        _ => ktree::random_k_tree(size * size + 4, 2, seed).graph,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flattening nested labels and converting back reproduces them
    /// exactly, and the per-vertex views agree entry by entry.
    #[test]
    fn flat_labels_roundtrip_nested(pick in 0u8..4, size in 2usize..6, seed in any::<u64>(), eps_tenths in 1u32..8) {
        let g = make_graph(pick, size, seed);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let labels = build_labels(&g, &tree, eps_tenths as f64 / 10.0, 1);
        let flat = FlatLabels::from_labels(&labels);
        prop_assert_eq!(flat.to_labels(), labels.clone());
        prop_assert_eq!(flat.num_labels(), labels.len());
        for (v, nested) in labels.iter().enumerate() {
            let view = flat.label(psep_graph::NodeId(v as u32));
            prop_assert_eq!(view.num_entries(), nested.num_entries());
            prop_assert_eq!(view.size(), nested.size());
            for ((ka, pa), (kb, pb)) in view.entries().zip(nested.entry_slices()) {
                prop_assert_eq!(ka, kb);
                prop_assert_eq!(pa, pb);
            }
        }
    }

    /// The wire round-trip is bit-exact: same arena, same epsilon, same
    /// answers.
    #[test]
    fn wire_roundtrip_is_bit_exact(pick in 0u8..4, size in 2usize..6, seed in any::<u64>()) {
        let g = make_graph(pick, size, seed);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let labels = build_labels(&g, &tree, 0.25, 1);
        let flat = FlatLabels::from_labels(&labels);
        let bytes = encode_labels(&flat, 0.25);
        let (back, eps) = decode_labels(&bytes).expect("own artifact decodes");
        prop_assert_eq!(&back, &flat);
        prop_assert_eq!(eps, 0.25);
    }

    /// Flipping any single byte of the artifact makes it undecodable:
    /// magic, payload, and checksum bytes are all covered.
    #[test]
    fn any_corrupted_byte_is_rejected(size in 2usize..5, seed in any::<u64>(), flip in any::<u16>(), bit in 0u8..8) {
        let g = make_graph(1, size, seed);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let labels = build_labels(&g, &tree, 0.5, 1);
        let flat = FlatLabels::from_labels(&labels);
        let bytes = encode_labels(&flat, 0.5);
        let mut bad = bytes.clone();
        let at = flip as usize % bad.len();
        bad[at] ^= 1 << bit;
        prop_assert!(decode_labels(&bad).is_err(), "flip at byte {} bit {} accepted", at, bit);
        // and the pristine copy still decodes
        prop_assert!(decode_labels(&bytes).is_ok());
    }

    /// A loaded oracle answers every query identically to the one that
    /// was saved.
    #[test]
    fn loaded_oracle_answers_identically(pick in 0u8..4, size in 2usize..5, seed in any::<u64>()) {
        let g = make_graph(pick, size, seed);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let oracle = psep_oracle::build_oracle(&g, &tree, psep_oracle::OracleParams::default());
        let mut buf = Vec::new();
        oracle.save(&mut buf).expect("save");
        let back = DistanceOracle::load(&buf[..]).expect("load");
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(back.query(u, v), oracle.query(u, v));
            }
        }
    }
}
