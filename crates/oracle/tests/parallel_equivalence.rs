//! Bit-identity of parallel construction: the decomposition tree and the
//! distance labels built at any thread count serialize to exactly the
//! same `psep-tree/v1` / `psep-labels/v1` wire bytes as the sequential
//! build, on every generator family and on random graphs.

use proptest::prelude::*;

use psep_core::decomposition::DecompositionParams;
use psep_core::strategy::AutoStrategy;
use psep_core::DecompositionTree;
use psep_oracle::label::build_labels;
use psep_oracle::wire::encode_labels;
use psep_oracle::FlatLabels;
use psep_testkit::{arb_graph, equivalence_families, THREAD_COUNTS};

const EPSILON: f64 = 0.25;

#[test]
fn parallel_tree_and_labels_are_bit_identical_on_every_family() {
    let strategy = AutoStrategy::default();
    for (name, g) in equivalence_families() {
        let base_tree = DecompositionTree::build(&g, &strategy);
        let base_tree_bytes = base_tree.encode();
        let base_labels = build_labels(&g, &base_tree, EPSILON, 1);
        let base_label_bytes = encode_labels(&FlatLabels::from_labels(&base_labels), EPSILON);
        for threads in THREAD_COUNTS {
            let params = DecompositionParams { threads };
            let tree = DecompositionTree::build_with(&g, &strategy, &params);
            assert_eq!(
                tree.encode(),
                base_tree_bytes,
                "family {name}: tree wire bytes differ at {threads} threads"
            );
            let labels = build_labels(&g, &tree, EPSILON, threads);
            assert_eq!(
                encode_labels(&FlatLabels::from_labels(&labels), EPSILON),
                base_label_bytes,
                "family {name}: label wire bytes differ at {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bit-identity holds on random trees, k-trees, and partial k-trees,
    /// not just the curated families.
    #[test]
    fn parallel_build_is_bit_identical_on_random_graphs(
        g in arb_graph(),
        threads_i in 0usize..THREAD_COUNTS.len(),
    ) {
        let threads = THREAD_COUNTS[threads_i];
        let strategy = AutoStrategy::default();
        let base_tree = DecompositionTree::build(&g, &strategy);
        let tree = DecompositionTree::build_with(
            &g,
            &strategy,
            &DecompositionParams { threads },
        );
        prop_assert_eq!(tree.encode(), base_tree.encode());
        let base_labels = build_labels(&g, &base_tree, EPSILON, 1);
        let labels = build_labels(&g, &tree, EPSILON, threads);
        prop_assert_eq!(
            encode_labels(&FlatLabels::from_labels(&labels), EPSILON),
            encode_labels(&FlatLabels::from_labels(&base_labels), EPSILON)
        );
    }
}
