//! Regression test for the path-major label construction: the number of
//! Dijkstra runs must equal the number of alive separator-path vertices
//! summed over every `(node, group)` of the tree — one run per source,
//! never one per alive vertex per level — at every thread count.
//!
//! Kept as a single test function in its own binary so no other test can
//! pollute the process-global obs counters.

use psep_core::strategy::AutoStrategy;
use psep_core::DecompositionTree;
use psep_graph::generators::grids;
use psep_oracle::label::build_labels;

#[test]
fn label_construction_runs_one_dijkstra_per_alive_path_vertex() {
    psep_obs::set_enabled(true);
    if !psep_obs::enabled() {
        // obs feature compiled out: counters are no-ops, nothing to assert
        return;
    }
    let g = grids::grid2d(8, 8, 1);
    let n = g.num_nodes();
    let tree = DecompositionTree::build(&g, &AutoStrategy::default());

    // expected: Σ over (node, group, path) of path vertices still alive
    // in that group's residual graph
    let mut expected = 0u64;
    for (h, node) in tree.nodes().iter().enumerate() {
        for gi in 0..node.separator.num_groups() {
            let mask = tree.residual_mask(n, h, gi);
            for q in &node.separator.groups[gi].paths {
                expected += q.vertices().iter().filter(|&&x| mask.contains(x)).count() as u64;
            }
        }
    }
    assert!(expected > 0, "grid decomposition should have path sources");

    for threads in [1usize, 4] {
        let before = psep_obs::snapshot()
            .counter("graph.dijkstra.invocations")
            .unwrap_or(0);
        let labels = build_labels(&g, &tree, 0.25, threads);
        assert_eq!(labels.len(), n);
        let after = psep_obs::snapshot()
            .counter("graph.dijkstra.invocations")
            .unwrap_or(0);
        assert_eq!(
            after - before,
            expected,
            "dijkstra count changed at {threads} threads"
        );
    }
}
