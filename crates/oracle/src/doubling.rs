//! The `(k, α)`-doubling distance oracle (Theorem 8, §5.3).
//!
//! Pieces are isometric subgraphs of low doubling dimension instead of
//! shortest paths, so the portal trick (positions along a path) no longer
//! applies. Following Talwar/Slivkins-style constructions, each piece
//! carries a hierarchy of greedy `r`-nets at geometric scales
//! `r_j = ⌊ε′·2^j⌋`; each vertex stores its distance (in the correct
//! residual graph `J`) to the net points of every scale that lie within
//! `4·2^j` of it. A query joins the two vertices' landmark lists and
//! takes `min_ℓ d_J(u,ℓ) + d_J(ℓ,v)`.
//!
//! With `ε′ = ε/4` the estimate is at most `(1+ε)·d` (crossing vertex
//! `x`, scale `2^{j*} ∈ [D, 2D)` for `D = max(d_J(u,x), d_J(v,x))`, and a
//! net point within `ε′·2^{j*}` of `x` — within both vertices' stored
//! balls), and never below `d` (each candidate is a real walk).

use psep_core::doubling::DoublingDecompositionTree;
use psep_graph::dijkstra::dijkstra;
use psep_graph::doubling::greedy_net;
use psep_graph::graph::{Graph, NodeId, Weight, INFINITY};
use psep_graph::metrics::diameter_estimate;
use psep_graph::view::{NodeMask, SubgraphView};

/// Construction parameters for [`build_doubling_oracle`].
#[derive(Clone, Copy, Debug)]
pub struct DoublingOracleParams {
    /// Approximation parameter: queries return at most `(1+ε)·d`.
    pub epsilon: f64,
    /// Worker threads for label construction.
    pub threads: usize,
}

impl Default for DoublingOracleParams {
    fn default() -> Self {
        DoublingOracleParams {
            epsilon: 0.5,
            threads: 1,
        }
    }
}

/// One stored landmark: a net point and the owner's distance to it in `J`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DoublingLandmark {
    /// The net point.
    pub landmark: NodeId,
    /// `d_J(v, landmark)` for the label owner `v`.
    pub dist: Weight,
}

/// A label entry: the owner's landmarks on one piece at one scale.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DoublingEntry {
    /// Decomposition node.
    pub node: u32,
    /// Group index.
    pub group: u16,
    /// Piece index within the group.
    pub piece: u16,
    /// Scale `j` (net radius `⌊ε′·2^j⌋`).
    pub scale: u8,
    /// Landmarks sorted by vertex id.
    pub landmarks: Vec<DoublingLandmark>,
}

impl DoublingEntry {
    fn key(&self) -> (u32, u16, u16, u8) {
        (self.node, self.group, self.piece, self.scale)
    }
}

/// The per-vertex label of the doubling oracle.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DoublingLabel {
    /// Entries sorted by `(node, group, piece, scale)`.
    pub entries: Vec<DoublingEntry>,
}

impl DoublingLabel {
    /// Total stored landmarks (the label size Theorem 8 bounds by
    /// `O(τ · log n)` with `τ ≤ k(α/ε)^{O(α)}`).
    pub fn size(&self) -> usize {
        self.entries.iter().map(|e| e.landmarks.len()).sum()
    }
}

/// The `(1+ε)`-approximate doubling-separator oracle.
#[derive(Clone, Debug)]
pub struct DoublingOracle {
    labels: Vec<DoublingLabel>,
    epsilon: f64,
}

/// Builds the Theorem 8 oracle for `g` over a doubling decomposition.
pub fn build_doubling_oracle(
    g: &Graph,
    tree: &DoublingDecompositionTree,
    params: DoublingOracleParams,
) -> DoublingOracle {
    assert!(params.epsilon > 0.0, "epsilon must be positive");
    let eps_net = params.epsilon / 4.0;
    let n = g.num_nodes();
    let mut labels: Vec<DoublingLabel> = vec![DoublingLabel::default(); n];

    for (h, node) in tree.nodes().iter().enumerate() {
        for gi in 0..node.separator.groups.len() {
            let pieces = &node.separator.groups[gi];
            if pieces.is_empty() {
                continue;
            }
            // residual graph J for this group
            let mut mask = NodeMask::from_nodes(n, node.vertices.iter().copied());
            for earlier in &node.separator.groups[..gi] {
                for p in earlier {
                    mask.remove_all(p.vertices.iter().copied());
                }
            }
            let view = SubgraphView::new(g, &mask);
            let jmax = scale_count(&view);
            // nets per piece per scale, on the induced piece subgraph
            // (isometric in J, so piece distances are J distances)
            let nets: Vec<Vec<Vec<NodeId>>> = pieces
                .iter()
                .map(|piece| {
                    let (pg, back) = psep_graph::minors::induced_subgraph(g, &piece.vertices);
                    (0..=jmax)
                        .map(|j| {
                            let r = (eps_net * (1u64 << j) as f64).floor() as Weight;
                            greedy_net(&pg, r)
                                .into_iter()
                                .map(|v| back[v.index()])
                                .collect()
                        })
                        .collect()
                })
                .collect();
            let alive: Vec<NodeId> = mask.iter().collect();
            let work = |chunk: &[NodeId]| -> Vec<(NodeId, Vec<DoublingEntry>)> {
                let mut out = Vec::with_capacity(chunk.len());
                for &v in chunk {
                    let sp = dijkstra(&view, &[v]);
                    let mut entries = Vec::new();
                    for (pi, piece_nets) in nets.iter().enumerate() {
                        for (j, net) in piece_nets.iter().enumerate() {
                            let ball = 4u64.saturating_mul(1u64 << j);
                            let mut landmarks: Vec<DoublingLandmark> = net
                                .iter()
                                .filter_map(|&p| {
                                    let d = sp.dist_raw()[p.index()];
                                    (d != INFINITY && d <= ball).then_some(DoublingLandmark {
                                        landmark: p,
                                        dist: d,
                                    })
                                })
                                .collect();
                            if !landmarks.is_empty() {
                                landmarks.sort_by_key(|l| l.landmark);
                                entries.push(DoublingEntry {
                                    node: h as u32,
                                    group: gi as u16,
                                    piece: pi as u16,
                                    scale: j as u8,
                                    landmarks,
                                });
                            }
                        }
                    }
                    out.push((v, entries));
                }
                out
            };
            let results: Vec<(NodeId, Vec<DoublingEntry>)> =
                if params.threads <= 1 || alive.len() < 64 {
                    work(&alive)
                } else {
                    let chunk_size = alive.len().div_ceil(params.threads);
                    let chunks: Vec<&[NodeId]> = alive.chunks(chunk_size).collect();
                    crossbeam::thread::scope(|s| {
                        let handles: Vec<_> = chunks
                            .into_iter()
                            .map(|c| s.spawn(move |_| work(c)))
                            .collect();
                        handles
                            .into_iter()
                            .flat_map(|h| h.join().expect("doubling worker panicked"))
                            .collect()
                    })
                    .expect("crossbeam scope failed")
                };
            for (v, entries) in results {
                labels[v.index()].entries.extend(entries);
            }
        }
    }
    for label in &mut labels {
        label.entries.sort_by_key(|e| e.key());
    }
    DoublingOracle {
        labels,
        epsilon: params.epsilon,
    }
}

/// Number of geometric scales needed for a residual graph: enough to
/// cover its diameter.
fn scale_count(view: &SubgraphView<'_>) -> usize {
    let diam = diameter_estimate(view).unwrap_or(1).max(1);
    // double-sweep underestimates by at most 2x; +2 covers it
    ((diam as f64).log2().ceil() as usize + 2).min(40)
}

impl DoublingOracle {
    /// The approximation parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The labels (index = vertex id).
    pub fn labels(&self) -> &[DoublingLabel] {
        &self.labels
    }

    /// `(1+ε)`-approximate distance; `None` when disconnected.
    pub fn query(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        if u == v {
            return Some(0);
        }
        let (a, b) = (
            &self.labels[u.index()].entries,
            &self.labels[v.index()].entries,
        );
        let mut best = INFINITY;
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].key().cmp(&b[j].key()) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // merge-join the sorted landmark lists
                    let (la, lb) = (&a[i].landmarks, &b[j].landmarks);
                    let (mut x, mut y) = (0usize, 0usize);
                    while x < la.len() && y < lb.len() {
                        match la[x].landmark.cmp(&lb[y].landmark) {
                            std::cmp::Ordering::Less => x += 1,
                            std::cmp::Ordering::Greater => y += 1,
                            std::cmp::Ordering::Equal => {
                                best = best.min(la[x].dist.saturating_add(lb[y].dist));
                                x += 1;
                                y += 1;
                            }
                        }
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        (best != INFINITY).then_some(best)
    }

    /// Total stored landmarks across all labels.
    pub fn space_entries(&self) -> usize {
        self.labels.iter().map(|l| l.size()).sum()
    }

    /// Mean label size.
    pub fn mean_label_size(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.space_entries() as f64 / self.labels.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_core::doubling::{DoublingDecompositionTree, GridPlaneStrategy};
    use psep_graph::generators::grids;

    fn check_stretch(g: &Graph, o: &DoublingOracle, eps: f64) {
        for u in g.nodes() {
            let sp = dijkstra(g, &[u]);
            for v in g.nodes() {
                let d = sp.dist(v).expect("mesh connected");
                if u == v {
                    continue;
                }
                let est = o.query(u, v).expect("connected");
                assert!(est >= d, "{u:?}->{v:?} est {est} < d {d}");
                assert!(
                    est as f64 <= (1.0 + eps) * d as f64 + 1e-9,
                    "{u:?}->{v:?} est {est} > (1+{eps})·{d}"
                );
            }
        }
    }

    #[test]
    fn stretch_on_3d_mesh() {
        let (x, y, z) = (4, 4, 4);
        let g = grids::grid3d(x, y, z);
        let tree = DoublingDecompositionTree::build(&g, &GridPlaneStrategy { dims: (x, y, z) });
        let o = build_doubling_oracle(
            &g,
            &tree,
            DoublingOracleParams {
                epsilon: 0.5,
                threads: 1,
            },
        );
        check_stretch(&g, &o, 0.5);
    }

    #[test]
    fn tighter_epsilon_tighter_answers() {
        let (x, y, z) = (4, 4, 3);
        let g = grids::grid3d(x, y, z);
        let tree = DoublingDecompositionTree::build(&g, &GridPlaneStrategy { dims: (x, y, z) });
        let o = build_doubling_oracle(
            &g,
            &tree,
            DoublingOracleParams {
                epsilon: 0.25,
                threads: 1,
            },
        );
        check_stretch(&g, &o, 0.25);
    }

    #[test]
    fn parallel_equals_serial() {
        let (x, y, z) = (4, 3, 3);
        let g = grids::grid3d(x, y, z);
        let tree = DoublingDecompositionTree::build(&g, &GridPlaneStrategy { dims: (x, y, z) });
        let a = build_doubling_oracle(
            &g,
            &tree,
            DoublingOracleParams {
                epsilon: 0.5,
                threads: 1,
            },
        );
        let b = build_doubling_oracle(
            &g,
            &tree,
            DoublingOracleParams {
                epsilon: 0.5,
                threads: 4,
            },
        );
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(a.query(u, v), b.query(u, v));
            }
        }
    }
}
