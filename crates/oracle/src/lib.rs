#![warn(missing_docs)]
//! `(1+ε)`-approximate distance labels and oracles over `k`-path
//! separable graphs — Theorem 2 of Abraham & Gavoille (PODC 2006) — and
//! the `(k, α)`-doubling variant of Theorem 8.
//!
//! # How it works
//!
//! Let `𝒯` be the decomposition tree (Section 4). A shortest `u→v` path
//! `R` inside a component `H` either stays inside one child (handled one
//! level down) or meets `S(H)`. Take the smallest group index `i` with
//! `R ∩ P_i ≠ ∅`: then `R` lies wholly in the residual graph
//! `J = H \ ⋃_{j<i} P_j`, is a shortest path of `J`, and crosses some
//! path `Q ∈ P_i` at a vertex `x`. Since `Q` is a shortest path of `J`,
//! storing a few *portals* of `Q` per vertex recovers
//! `d_J(u,x) + d_J(x,v) = d(u,v)` up to `1+ε`:
//!
//! * each vertex `v` stores, per `(level, group, path)`, portal pairs
//!   `(pos(p), d_J(v,p))` chosen greedily so that
//!   `min_p d_J(v,p) + d_Q(p,x) ≤ (1+ε)·d_J(v,x)` for **every** `x ∈ Q`
//!   ([`portals::select_portals`]);
//! * a query takes the minimum over matching label entries of
//!   `d_J(u,p) + |pos(p) − pos(q)| + d_J(v,q)` — never below `d(u,v)`,
//!   and at the crossing entry at most `(1+ε)·d(u,v)`.
//!
//! The labels form the oracle; both the per-label space `O(k/ε · log n)`
//! and the query time `O(k/ε · log n)` shapes are measured by
//! experiment E3.

pub mod batch;
pub mod directory;
pub mod doubling;
pub mod error;
pub mod estimator;
pub mod exact;
pub mod flat;
pub mod label;
pub mod oracle;
pub mod path;
pub mod portals;
pub mod thorup_zwick;
pub mod wire;

pub use batch::BatchQueryEngine;
pub use directory::{ObjectDirectory, ObjectId};
pub use doubling::{build_doubling_oracle, DoublingOracle, DoublingOracleParams};
pub use error::Error;
pub use estimator::DistanceEstimator;
pub use exact::ExactOracle;
pub use flat::{FlatLabels, LabelRef};
pub use label::{DistanceLabel, LabelEntry, PortalEntry};
pub use oracle::{build_oracle, DistanceOracle, JoinStats, OracleBuilder, OracleParams};
pub use path::WitnessPath;
pub use thorup_zwick::ThorupZwickOracle;
