//! [`DistanceEstimator`] — the one interface every oracle in this crate
//! answers to, so benchmarks, examples, and serving code can swap the
//! path-separator oracle, the doubling variant, Thorup–Zwick, and the
//! exact baselines without rewriting the measurement loop.

use psep_graph::graph::{NodeId, Weight};

use crate::doubling::DoublingOracle;
use crate::exact::ExactOracle;
use crate::oracle::DistanceOracle;
use crate::thorup_zwick::ThorupZwickOracle;

/// A distance oracle: point queries with a known worst-case error bound
/// and a measurable space footprint.
///
/// The guarantee is `d(u,v) ≤ query(u,v) ≤ (1 + epsilon()) · d(u,v)`
/// for connected pairs; `epsilon()` is `0.0` for exact oracles and
/// `2k − 2` for a stretch-`2k−1` Thorup–Zwick oracle.
pub trait DistanceEstimator {
    /// Estimated distance, or `None` when the oracle cannot connect the
    /// pair (disconnected, or a TZ query walk that dead-ends).
    fn query(&self, u: NodeId, v: NodeId) -> Option<Weight>;

    /// The worst-case relative error `ε` of [`Self::query`].
    fn epsilon(&self) -> f64;

    /// Stored entries — the space measure experiment E3 compares
    /// (portal entries, bunch sizes, or matrix cells, per oracle kind).
    fn space_entries(&self) -> usize;
}

impl DistanceEstimator for DistanceOracle<'_> {
    fn query(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        DistanceOracle::query(self, u, v)
    }

    fn epsilon(&self) -> f64 {
        DistanceOracle::epsilon(self)
    }

    fn space_entries(&self) -> usize {
        DistanceOracle::space_entries(self)
    }
}

impl DistanceEstimator for DoublingOracle {
    fn query(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        DoublingOracle::query(self, u, v)
    }

    fn epsilon(&self) -> f64 {
        DoublingOracle::epsilon(self)
    }

    fn space_entries(&self) -> usize {
        DoublingOracle::space_entries(self)
    }
}

impl DistanceEstimator for ExactOracle {
    fn query(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        ExactOracle::query(self, u, v)
    }

    fn epsilon(&self) -> f64 {
        0.0
    }

    fn space_entries(&self) -> usize {
        ExactOracle::space_entries(self)
    }
}

impl DistanceEstimator for ThorupZwickOracle {
    fn query(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        ThorupZwickOracle::query(self, u, v)
    }

    /// Stretch ≤ `2k − 1` means relative error at most `2k − 2`.
    fn epsilon(&self) -> f64 {
        (2 * self.k()) as f64 - 2.0
    }

    fn space_entries(&self) -> usize {
        ThorupZwickOracle::space_entries(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_core::strategy::AutoStrategy;
    use psep_core::DecompositionTree;
    use psep_graph::generators::grids;
    use psep_graph::Graph;

    /// The generic measurement loop the bench harness runs: worst
    /// observed stretch must respect the advertised `epsilon`.
    fn worst_stretch<E: DistanceEstimator + ?Sized>(g: &Graph, est: &E) -> f64 {
        let exact = ExactOracle::build_apsp(g);
        let mut worst = 1.0f64;
        for u in g.nodes() {
            for v in g.nodes() {
                let Some(d) = exact.query(u, v) else { continue };
                if d == 0 {
                    continue;
                }
                let approx = est.query(u, v).expect("connected pair") as f64;
                worst = worst.max(approx / d as f64);
            }
        }
        worst
    }

    #[test]
    fn every_oracle_honors_its_epsilon() {
        let g = grids::grid2d(5, 5, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let ours = crate::oracle::build_oracle(&g, &tree, crate::oracle::OracleParams::default());
        let tz = ThorupZwickOracle::build(&g, 2, 7);
        let exact = ExactOracle::build_apsp(&g);

        let oracles: Vec<&dyn DistanceEstimator> = vec![&ours, &tz, &exact];
        for o in oracles {
            let worst = worst_stretch(&g, o);
            assert!(
                worst <= 1.0 + o.epsilon() + 1e-9,
                "stretch {worst} exceeds 1 + ε = {}",
                1.0 + o.epsilon()
            );
            assert!(o.space_entries() > 0);
        }
    }
}
