//! Distance labels (Theorem 2) and their path-major parallel
//! construction.

use psep_core::decomposition::DecompositionTree;
use psep_core::exec::{ShardObs, ShardedRunner};
use psep_graph::dijkstra::DijkstraScratch;
use psep_graph::graph::{Graph, NodeId, Weight};
use psep_graph::view::SubgraphView;

/// One portal of a separator path: its position (prefix-sum cost) along
/// the path, and the distance from the label's owner in the residual
/// graph `J`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
#[repr(C)]
pub struct PortalEntry {
    /// Position along the path (so `d_Q(p,q) = |pos_p − pos_q|`).
    pub pos: Weight,
    /// `d_J(v, p)` for the label owner `v`.
    pub dist: Weight,
}

// SAFETY: `#[repr(C)]` with two `u64` fields — 16 bytes, no padding,
// every bit pattern valid, field order matches the wire layout.
unsafe impl psep_core::wire::Pod for PortalEntry {
    const SIZE: usize = 16;
    fn read_le(bytes: &[u8]) -> Self {
        PortalEntry {
            pos: u64::from_le_bytes(bytes[..8].try_into().unwrap()),
            dist: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
        }
    }
    fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.pos.to_le_bytes());
        out.extend_from_slice(&self.dist.to_le_bytes());
    }
}

/// A label entry: the owner's portals on one separator path, identified
/// by `(node, group, path)` in the decomposition tree.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LabelEntry {
    /// Decomposition-tree node index.
    pub node: u32,
    /// Group index `i` within the node's separator.
    pub group: u16,
    /// Path index within the group.
    pub path: u16,
    /// The owner's portals on that path.
    pub portals: Vec<PortalEntry>,
}

impl LabelEntry {
    /// The `(node, group, path)` sort/join key.
    pub fn key(&self) -> (u32, u16, u16) {
        (self.node, self.group, self.path)
    }

    /// The key packed into one `u64` — same ordering as [`Self::key`],
    /// one comparison in the merge-join.
    pub fn packed_key(&self) -> u64 {
        pack_key(self.node, self.group, self.path)
    }
}

/// Packs `(node, group, path)` into one `u64` preserving lexicographic
/// order.
pub fn pack_key(node: u32, group: u16, path: u16) -> u64 {
    ((node as u64) << 32) | ((group as u64) << 16) | path as u64
}

/// Inverse of [`pack_key`].
pub fn unpack_key(key: u64) -> (u32, u16, u16) {
    ((key >> 32) as u32, (key >> 16) as u16, key as u16)
}

/// The `(1+ε)`-approximate distance label of one vertex: entries for
/// every `(level, group, path)` of its root-to-home chain, sorted by key.
///
/// Label *size* (the quantity Theorem 2 bounds by `O(k/ε · log n)`) is
/// the total number of portal entries.
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DistanceLabel {
    /// Entries sorted by `(node, group, path)`.
    pub entries: Vec<LabelEntry>,
}

impl DistanceLabel {
    /// Total number of portal entries (the label size of Theorem 2).
    pub fn size(&self) -> usize {
        self.entries.iter().map(|e| e.portals.len()).sum()
    }

    /// Number of `(node, group, path)` entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// The entries as `(packed key, portals)` pairs in ascending key
    /// order — the shape the merge-join core consumes, shared with
    /// [`crate::flat::LabelRef::entries`].
    pub fn entry_slices(&self) -> impl Iterator<Item = (u64, &[PortalEntry])> {
        self.entries
            .iter()
            .map(|e| (e.packed_key(), e.portals.as_slice()))
    }
}

/// Builds the distance labels of every vertex of `g` over `tree`.
///
/// Construction is path-major: for each `(node, group)` the residual
/// graph `J` is materialized once, then one Dijkstra **per separator
/// path vertex** (not per alive vertex — `d_J` is symmetric in an
/// undirected graph) distributes that vertex's distances to every alive
/// vertex's incremental portal greedy. Since the greedy scans path
/// vertices in ascending path order, replaying its decisions per target
/// as the sources arrive in that same order reproduces the node-major
/// `select_portals` output exactly — while running `Σ |path|` Dijkstras
/// per level instead of one per alive vertex, i.e. `O(n)` total instead
/// of `O(n · depth)`.
///
/// With `threads > 1` the per-source Dijkstras fan out in blocks on a
/// [`ShardedRunner`], each worker owning a reusable [`DijkstraScratch`]
/// arena; the runner returns each block's results in source order and
/// greedy application stays sequential between blocks, so the output is
/// **bit-identical** at every thread count (the equivalence suite
/// compares `psep-labels/v1` wire bytes to lock this down).
pub fn build_labels(
    g: &Graph,
    tree: &DecompositionTree,
    epsilon: f64,
    threads: usize,
) -> Vec<DistanceLabel> {
    assert!(epsilon > 0.0, "epsilon must be positive");
    let _span = psep_obs::span!("build_labels");
    let n = g.num_nodes();
    let mut labels: Vec<DistanceLabel> = vec![DistanceLabel::default(); n];
    let workers = threads.max(1);
    let runner = ShardedRunner::new(workers);
    const LABEL_OBS: ShardObs = ShardObs {
        prefix: "oracle.label",
        items: "sources",
        units: "reached",
    };
    // per-worker reusable Dijkstra arenas, shared across all levels
    let mut scratches: Vec<DijkstraScratch> =
        (0..workers).map(|_| DijkstraScratch::new(n)).collect();

    // wall time per decomposition level, published as gauges below
    let mut level_ns: Vec<u128> = Vec::new();

    for (h, node) in tree.nodes().iter().enumerate() {
        for gi in 0..node.separator.num_groups() {
            let paths = &node.separator.groups[gi].paths;
            if paths.is_empty() {
                continue;
            }
            let t_group = psep_obs::now_if_enabled();
            let mask = tree.residual_mask(n, h, gi);
            let view = SubgraphView::new(g, &mask);
            // sources: every path vertex present in J, in (path, index)
            // order — the order the portal greedy scans them
            let sources: Vec<(u32, u32)> = paths
                .iter()
                .enumerate()
                .flat_map(|(pi, q)| {
                    q.vertices()
                        .iter()
                        .enumerate()
                        .filter(|(_, x)| mask.contains(**x))
                        .map(move |(xi, _)| (pi as u32, xi as u32))
                })
                .collect();
            // per-(path, vertex) greedy state: portals chosen so far as
            // (path index, d_J) pairs
            let mut chosen: Vec<Vec<Vec<(u32, Weight)>>> =
                paths.iter().map(|_| vec![Vec::new(); n]).collect();
            // One greedy step: source (pi, xi) offers itself as a portal
            // to every vertex it reached; a vertex accepts unless an
            // earlier-chosen portal already covers it within (1+ε) —
            // exactly the per-vertex scan of the node-major greedy.
            let apply = |chosen: &mut Vec<Vec<Vec<(u32, Weight)>>>,
                         pi: u32,
                         xi: u32,
                         reached: &[(NodeId, Weight)]| {
                let q = &paths[pi as usize];
                for &(v, dx) in reached {
                    let state = &mut chosen[pi as usize][v.index()];
                    let covered = state.iter().any(|&(p, dp)| {
                        let reach = dp.saturating_add(q.along(p as usize, xi as usize));
                        (reach as f64) <= (1.0 + epsilon) * (dx as f64)
                    });
                    if !covered {
                        state.push((xi, dx));
                    }
                }
            };

            // Block-parallel on the shared runner: Dijkstras fan out
            // within a block, the greedy replays sequentially in source
            // order between blocks — so neither the block size nor the
            // claim schedule can affect the output. One block per
            // 8 × workers sources bounds the reached-lists held live.
            let block = (workers * 8).max(16);
            for start in (0..sources.len()).step_by(block) {
                let slice = &sources[start..sources.len().min(start + block)];
                let view_ref = &view;
                let (results, _) = runner.run(
                    slice,
                    Some(&LABEL_OBS),
                    &mut scratches,
                    |scratch, &(pi, xi)| {
                        let x = paths[pi as usize].vertices()[xi as usize];
                        scratch.run(view_ref, &[x]);
                        let r = scratch.reached_vec();
                        let reach = r.len() as u64;
                        (r, reach)
                    },
                );
                for (&(pi, xi), reached) in slice.iter().zip(&results) {
                    apply(&mut chosen, pi, xi, reached);
                }
            }

            // emit per-vertex entries in ascending (vertex, path) order,
            // converting greedy state to portal entries
            for v in mask.iter() {
                for (pi, q) in paths.iter().enumerate() {
                    let state = std::mem::take(&mut chosen[pi][v.index()]);
                    if state.is_empty() {
                        continue;
                    }
                    let portals = state
                        .into_iter()
                        .map(|(xi, d)| PortalEntry {
                            pos: q.position(xi as usize),
                            dist: d,
                        })
                        .collect();
                    labels[v.index()].entries.push(LabelEntry {
                        node: h as u32,
                        group: gi as u16,
                        path: pi as u16,
                        portals,
                    });
                }
            }
            if let Some(t0) = t_group {
                let elapsed = t0.elapsed().as_nanos();
                psep_obs::histogram!("oracle.label.group_build_ns")
                    .record(elapsed.min(u64::MAX as u128) as u64);
                if level_ns.len() <= node.depth {
                    level_ns.resize(node.depth + 1, 0);
                }
                level_ns[node.depth] += elapsed;
            }
        }
    }
    for (level, ns) in level_ns.iter().enumerate() {
        psep_obs::gauge(&format!("oracle.label.level{level:02}.build_ns")).set(*ns as f64);
    }
    for label in &mut labels {
        label.entries.sort_by_key(|e| e.key());
    }
    if psep_obs::enabled() {
        let entries: usize = labels.iter().map(|l| l.num_entries()).sum();
        let portals: usize = labels.iter().map(|l| l.size()).sum();
        psep_obs::counter("oracle.labels.entries").add(entries as u64);
        psep_obs::counter("oracle.labels.portal_entries").add(portals as u64);
        // Serialized size proxy: each entry is an 8-byte key plus
        // 16 bytes (pos, dist) per portal.
        psep_obs::counter("oracle.labels.bytes").add((entries * 8 + portals * 16) as u64);
        let stats = label_stats(&labels);
        psep_obs::gauge("oracle.labels.mean_size").set(stats.mean_size);
        psep_obs::gauge("oracle.labels.max_size").set_max(stats.max_size as f64);
        psep_obs::gauge("oracle.labels.mean_entries").set(stats.mean_entries);
    }
    labels
}

/// Label-size statistics over a set of labels.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LabelStats {
    /// Mean portal entries per label.
    pub mean_size: f64,
    /// Maximum portal entries in any label.
    pub max_size: usize,
    /// Mean `(node, group, path)` entries per label.
    pub mean_entries: f64,
    /// Mean portals per entry.
    pub mean_portals_per_entry: f64,
}

/// Computes [`LabelStats`] for `labels`.
pub fn label_stats(labels: &[DistanceLabel]) -> LabelStats {
    if labels.is_empty() {
        return LabelStats::default();
    }
    let sizes: Vec<usize> = labels.iter().map(|l| l.size()).collect();
    let entries: Vec<usize> = labels.iter().map(|l| l.num_entries()).collect();
    let total_size: usize = sizes.iter().sum();
    let total_entries: usize = entries.iter().sum();
    LabelStats {
        mean_size: total_size as f64 / labels.len() as f64,
        max_size: sizes.iter().copied().max().unwrap_or(0),
        mean_entries: total_entries as f64 / labels.len() as f64,
        mean_portals_per_entry: if total_entries == 0 {
            0.0
        } else {
            total_size as f64 / total_entries as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_core::strategy::AutoStrategy;
    use psep_core::DecompositionTree;
    use psep_graph::generators::grids;

    #[test]
    fn labels_cover_every_vertex_and_are_sorted() {
        let g = grids::grid2d(6, 6, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let labels = build_labels(&g, &tree, 0.25, 1);
        assert_eq!(labels.len(), 36);
        for (vi, l) in labels.iter().enumerate() {
            assert!(l.size() > 0, "vertex {vi} has an empty label");
            let mut keys: Vec<_> = l.entries.iter().map(|e| e.key()).collect();
            let sorted = {
                let mut k = keys.clone();
                k.sort_unstable();
                k
            };
            assert_eq!(keys.len(), sorted.len());
            keys.sort_unstable();
            assert_eq!(keys, sorted);
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let g = grids::grid2d(8, 8, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let serial = build_labels(&g, &tree, 0.5, 1);
        let parallel = build_labels(&g, &tree, 0.5, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn stats_are_consistent() {
        let g = grids::grid2d(5, 5, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let labels = build_labels(&g, &tree, 0.25, 1);
        let stats = label_stats(&labels);
        assert!(stats.mean_size > 0.0);
        assert!(stats.max_size >= stats.mean_size as usize);
        assert!(stats.mean_portals_per_entry >= 1.0);
    }
}
