//! Contiguous (CSR-style) label storage: the whole oracle's entries and
//! portals in four flat arrays.
//!
//! The nested [`DistanceLabel`] representation allocates one `Vec` per
//! vertex plus one `Vec` per entry — friendly to construct, hostile to
//! serve: a query chases two levels of pointers per entry and the
//! allocator scatters labels across the heap. [`FlatLabels`] stores the
//! same information as
//!
//! ```text
//! entry_start:  n+1   u32  — entries of vertex v are entry_start[v]..entry_start[v+1]
//! keys:         E     u64  — packed (node, group, path), ascending per vertex
//! portal_start: E+1   u32  — portals of entry e are portal_start[e]..portal_start[e+1]
//! portals:      P     PortalEntry
//! ```
//!
//! so the merge-join of a query walks two contiguous key slices and the
//! portal arena linearly. Construction is one pass and queries borrow
//! [`LabelRef`] views; [`FlatLabels::to_labels`] converts back whenever
//! the nested form is wanted (round-trips exactly).

use psep_core::wire::ArenaStorage;
use psep_graph::graph::{NodeId, Weight, INFINITY};

use crate::error::Error;
use crate::label::{unpack_key, DistanceLabel, LabelEntry, LabelStats, PortalEntry};

/// All labels of one oracle in contiguous CSR-style arrays.
///
/// Each column is [`ArenaStorage`]: owned when built in memory or
/// decoded from `psep-labels/v1`, borrowed in place from the caller's
/// buffer when loaded from an aligned `psep-bundle/v2` section. Queries
/// are bit-identical either way.
///
/// Invariants (maintained by every constructor):
///
/// * `entry_start` has `num_labels() + 1` elements, is non-decreasing,
///   starts at 0 and ends at `keys.len()`;
/// * `portal_start` has `keys.len() + 1` elements, is non-decreasing,
///   starts at 0 and ends at `portals.len()`;
/// * within each vertex's range, `keys` is strictly ascending.
///
/// Alongside the four wire columns the arena carries one *derived*
/// column, `min_portal_dist`: for each entry, the minimum `dist` over
/// its portals ([`INFINITY`] for an entry with no portals). The query
/// merge-join uses it as an admissible lower bound — every candidate
/// through entry `e` costs at least `min_portal_dist[e]` on `e`'s side —
/// to skip keys and portal tails that cannot beat the running minimum.
/// It is recomputed by every constructor (so v1 artifacts and raw or
/// compressed v2 bundles all get it on load), never serialized, and
/// excluded from [`Self::as_parts`], [`Self::owned_bytes`], and
/// [`Self::is_borrowed`]: it is arithmetic over the validated columns,
/// not arena data.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlatLabels<'a> {
    entry_start: ArenaStorage<'a, u32>,
    keys: ArenaStorage<'a, u64>,
    portal_start: ArenaStorage<'a, u32>,
    portals: ArenaStorage<'a, PortalEntry>,
    /// Derived: per-entry minimum portal `dist` (the prune bound).
    min_portal_dist: Vec<Weight>,
}

/// Per-entry minimum portal distances for `portals` bounded by
/// `portal_start` — the admissible lower bound the pruned merge-join
/// relies on.
fn compute_min_portal_dists(portal_start: &[u32], portals: &[PortalEntry]) -> Vec<Weight> {
    (0..portal_start.len().saturating_sub(1))
        .map(|e| {
            portals[portal_start[e] as usize..portal_start[e + 1] as usize]
                .iter()
                .map(|p| p.dist)
                .min()
                .unwrap_or(INFINITY)
        })
        .collect()
}

impl<'a> FlatLabels<'a> {
    /// Flattens nested labels (index = vertex id) into one arena.
    pub fn from_labels(labels: &[DistanceLabel]) -> Self {
        let num_entries: usize = labels.iter().map(|l| l.num_entries()).sum();
        let num_portals: usize = labels.iter().map(|l| l.size()).sum();
        let mut entry_start = Vec::with_capacity(labels.len() + 1);
        let mut keys = Vec::with_capacity(num_entries);
        let mut portal_start = Vec::with_capacity(num_entries + 1);
        let mut portals = Vec::with_capacity(num_portals);
        entry_start.push(0);
        portal_start.push(0);
        for label in labels {
            for entry in &label.entries {
                keys.push(entry.packed_key());
                portals.extend_from_slice(&entry.portals);
                portal_start.push(portals.len() as u32);
            }
            entry_start.push(keys.len() as u32);
        }
        let min_portal_dist = compute_min_portal_dists(&portal_start, &portals);
        FlatLabels {
            entry_start: entry_start.into(),
            keys: keys.into(),
            portal_start: portal_start.into(),
            portals: portals.into(),
            min_portal_dist,
        }
    }

    /// Assembles an arena directly from its four arrays, validating the
    /// CSR invariants. This is the entry point of the `psep-labels/v1`
    /// decoder; in-process callers normally use [`FlatLabels::from_labels`].
    pub fn from_parts(
        entry_start: Vec<u32>,
        keys: Vec<u64>,
        portal_start: Vec<u32>,
        portals: Vec<PortalEntry>,
    ) -> Result<Self, Error> {
        FlatLabels::from_storage_parts(
            entry_start.into(),
            keys.into(),
            portal_start.into(),
            portals.into(),
        )
    }

    /// Assembles an arena from borrowed-or-owned columns, validating the
    /// CSR invariants — the zero-copy entry point of the
    /// `psep-bundle/v2` decoder.
    pub fn from_storage_parts(
        entry_start: ArenaStorage<'a, u32>,
        keys: ArenaStorage<'a, u64>,
        portal_start: ArenaStorage<'a, u32>,
        portals: ArenaStorage<'a, PortalEntry>,
    ) -> Result<Self, Error> {
        let corrupt = |what: &'static str| Err(Error::corrupt(what));
        if entry_start.first() != Some(&0) || portal_start.first() != Some(&0) {
            return corrupt("offset arrays must start at 0");
        }
        if *entry_start.last().unwrap() as usize != keys.len() {
            return corrupt("entry_start must end at keys.len()");
        }
        if portal_start.len() != keys.len() + 1 {
            return corrupt("portal_start must have one bound per entry plus one");
        }
        if *portal_start.last().unwrap() as usize != portals.len() {
            return corrupt("portal_start must end at portals.len()");
        }
        if entry_start.windows(2).any(|w| w[0] > w[1]) {
            return corrupt("entry_start must be non-decreasing");
        }
        if portal_start.windows(2).any(|w| w[0] > w[1]) {
            return corrupt("portal_start must be non-decreasing");
        }
        for v in 0..entry_start.len() - 1 {
            let range = entry_start[v] as usize..entry_start[v + 1] as usize;
            if keys[range].windows(2).any(|w| w[0] >= w[1]) {
                return corrupt("keys must be strictly ascending within a vertex");
            }
        }
        let min_portal_dist = compute_min_portal_dists(&portal_start, &portals);
        Ok(FlatLabels {
            entry_start,
            keys,
            portal_start,
            portals,
            min_portal_dist,
        })
    }

    /// Expands back to the nested per-vertex representation
    /// (`from_labels(&flat.to_labels()) == flat`).
    pub fn to_labels(&self) -> Vec<DistanceLabel> {
        (0..self.num_labels())
            .map(|v| {
                let r = self.label(NodeId::from_index(v));
                DistanceLabel {
                    entries: r
                        .entries()
                        .map(|(key, portals)| {
                            let (node, group, path) = unpack_key(key);
                            LabelEntry {
                                node,
                                group,
                                path,
                                portals: portals.to_vec(),
                            }
                        })
                        .collect(),
                }
            })
            .collect()
    }

    /// Number of labels (vertices).
    pub fn num_labels(&self) -> usize {
        self.entry_start.len() - 1
    }

    /// Total `(node, group, path)` entries across all labels.
    pub fn num_entries(&self) -> usize {
        self.keys.len()
    }

    /// Total portal entries — the oracle's space in the sense of
    /// Theorem 2.
    pub fn num_portals(&self) -> usize {
        self.portals.len()
    }

    /// Borrowed view of `v`'s label.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; use [`FlatLabels::try_label`] to
    /// get an error instead.
    pub fn label(&self, v: NodeId) -> LabelRef<'_> {
        self.try_label(v).unwrap()
    }

    /// Borrowed view of `v`'s label, or [`Error::NodeOutOfRange`].
    pub fn try_label(&self, v: NodeId) -> Result<LabelRef<'_>, Error> {
        let i = v.index();
        if i >= self.num_labels() {
            return Err(Error::NodeOutOfRange {
                node: v,
                num_nodes: self.num_labels(),
            });
        }
        let (lo, hi) = (
            self.entry_start[i] as usize,
            self.entry_start[i + 1] as usize,
        );
        Ok(LabelRef {
            keys: &self.keys[lo..hi],
            bounds: &self.portal_start[lo..=hi],
            portals: &self.portals,
            mins: &self.min_portal_dist[lo..hi],
        })
    }

    /// The derived per-entry minimum portal distances (one per entry,
    /// parallel to the key arena) — the prune bounds of the merge-join.
    pub fn min_portal_dists(&self) -> &[Weight] {
        &self.min_portal_dist
    }

    /// Raw arrays `(entry_start, keys, portal_start, portals)` — what
    /// the wire format encodes.
    pub fn as_parts(&self) -> (&[u32], &[u64], &[u32], &[PortalEntry]) {
        (
            &self.entry_start,
            &self.keys,
            &self.portal_start,
            &self.portals,
        )
    }

    /// Label statistics, computed from the offsets without materializing
    /// nested labels.
    pub fn stats(&self) -> LabelStats {
        let n = self.num_labels();
        if n == 0 {
            return LabelStats::default();
        }
        let max_size = (0..n)
            .map(|v| {
                let (lo, hi) = (
                    self.entry_start[v] as usize,
                    self.entry_start[v + 1] as usize,
                );
                (self.portal_start[hi] - self.portal_start[lo]) as usize
            })
            .max()
            .unwrap_or(0);
        LabelStats {
            mean_size: self.num_portals() as f64 / n as f64,
            max_size,
            mean_entries: self.num_entries() as f64 / n as f64,
            mean_portals_per_entry: if self.num_entries() == 0 {
                0.0
            } else {
                self.num_portals() as f64 / self.num_entries() as f64
            },
        }
    }

    /// Heap bytes of the arena — the in-memory footprint the wire
    /// format's `bytes_per_label` is compared against.
    pub fn heap_bytes(&self) -> usize {
        self.entry_start.len() * 4
            + self.keys.len() * 8
            + self.portal_start.len() * 4
            + self.portals.len() * std::mem::size_of::<PortalEntry>()
    }

    /// Heap bytes actually owned by this arena — zero when every column
    /// is borrowed from a mapped bundle.
    pub fn owned_bytes(&self) -> usize {
        self.entry_start.owned_bytes()
            + self.keys.owned_bytes()
            + self.portal_start.owned_bytes()
            + self.portals.owned_bytes()
    }

    /// True when every column is served in place from an external
    /// buffer (the zero-copy load path).
    pub fn is_borrowed(&self) -> bool {
        self.entry_start.is_borrowed()
            && self.keys.is_borrowed()
            && self.portal_start.is_borrowed()
            && self.portals.is_borrowed()
    }

    /// Copies any borrowed column onto the heap, detaching the arena
    /// from the buffer it was mapped from.
    pub fn into_owned(self) -> FlatLabels<'static> {
        FlatLabels {
            entry_start: self.entry_start.into_owned(),
            keys: self.keys.into_owned(),
            portal_start: self.portal_start.into_owned(),
            portals: self.portals.into_owned(),
            min_portal_dist: self.min_portal_dist,
        }
    }
}

/// A borrowed label: key slice plus portal bounds into the shared arena.
#[derive(Clone, Copy, Debug)]
pub struct LabelRef<'a> {
    /// Packed `(node, group, path)` keys, strictly ascending.
    keys: &'a [u64],
    /// `keys.len() + 1` bounds into `portals`.
    bounds: &'a [u32],
    /// The whole portal arena (bounds are global indices).
    portals: &'a [PortalEntry],
    /// Per-entry minimum portal distance, parallel to `keys`.
    mins: &'a [Weight],
}

impl<'a> LabelRef<'a> {
    /// The entries as `(packed key, portals)` pairs in ascending key
    /// order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, &'a [PortalEntry])> + '_ {
        self.keys.iter().enumerate().map(|(i, &k)| {
            (
                k,
                &self.portals[self.bounds[i] as usize..self.bounds[i + 1] as usize],
            )
        })
    }

    /// The entries as `(packed key, portals, min portal dist)` triples in
    /// ascending key order — the shape the bound-pruned merge-join core
    /// consumes. The third element is the stored prune bound for the
    /// entry (no portal scan needed to obtain it).
    pub fn entries_with_min(&self) -> impl Iterator<Item = (u64, &'a [PortalEntry], Weight)> + '_ {
        self.keys.iter().enumerate().map(|(i, &k)| {
            (
                k,
                &self.portals[self.bounds[i] as usize..self.bounds[i + 1] as usize],
                self.mins[i],
            )
        })
    }

    /// Number of `(node, group, path)` entries.
    pub fn num_entries(&self) -> usize {
        self.keys.len()
    }

    /// Total portal entries (the label size of Theorem 2).
    pub fn size(&self) -> usize {
        (self.bounds[self.keys.len()] - self.bounds[0]) as usize
    }

    /// The portals stored for packed key `key`, if present.
    pub fn portals_for(&self, key: u64) -> Option<&'a [PortalEntry]> {
        let i = self.keys.binary_search(&key).ok()?;
        Some(&self.portals[self.bounds[i] as usize..self.bounds[i + 1] as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::build_labels;
    use psep_core::strategy::AutoStrategy;
    use psep_core::DecompositionTree;
    use psep_graph::generators::grids;

    fn grid_labels() -> Vec<DistanceLabel> {
        let g = grids::grid2d(6, 6, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        build_labels(&g, &tree, 0.25, 1)
    }

    #[test]
    fn roundtrip_grid_labels() {
        let labels = grid_labels();
        let flat = FlatLabels::from_labels(&labels);
        assert_eq!(flat.num_labels(), labels.len());
        assert_eq!(
            flat.num_portals(),
            labels.iter().map(|l| l.size()).sum::<usize>()
        );
        assert_eq!(flat.to_labels(), labels);
        // and converting again is bit-identical
        assert_eq!(FlatLabels::from_labels(&flat.to_labels()), flat);
    }

    #[test]
    fn stats_match_nested_stats() {
        let labels = grid_labels();
        let flat = FlatLabels::from_labels(&labels);
        let nested = crate::label::label_stats(&labels);
        let fs = flat.stats();
        assert_eq!(fs.max_size, nested.max_size);
        assert!((fs.mean_size - nested.mean_size).abs() < 1e-12);
        assert!((fs.mean_entries - nested.mean_entries).abs() < 1e-12);
    }

    #[test]
    fn label_ref_views_match_nested_entries() {
        let labels = grid_labels();
        let flat = FlatLabels::from_labels(&labels);
        for (v, label) in labels.iter().enumerate() {
            let r = flat.label(NodeId::from_index(v));
            assert_eq!(r.num_entries(), label.num_entries());
            assert_eq!(r.size(), label.size());
            for ((key, portals), entry) in r.entries().zip(&label.entries) {
                assert_eq!(key, entry.packed_key());
                assert_eq!(portals, entry.portals.as_slice());
                assert_eq!(r.portals_for(key), Some(entry.portals.as_slice()));
            }
        }
        assert_eq!(flat.label(NodeId(0)).portals_for(u64::MAX), None);
    }

    #[test]
    fn out_of_range_label_is_an_error() {
        let flat = FlatLabels::from_labels(&grid_labels());
        let err = flat.try_label(NodeId(999)).unwrap_err();
        assert!(matches!(err, Error::NodeOutOfRange { .. }));
    }

    #[test]
    fn from_parts_rejects_broken_invariants() {
        let flat = FlatLabels::from_labels(&grid_labels());
        let (es, keys, ps, portals) = flat.as_parts();
        // valid parts reassemble
        assert_eq!(
            FlatLabels::from_parts(es.to_vec(), keys.to_vec(), ps.to_vec(), portals.to_vec())
                .unwrap(),
            flat
        );
        // descending keys within a vertex
        let mut bad_keys = keys.to_vec();
        bad_keys.swap(0, 1);
        assert!(
            FlatLabels::from_parts(es.to_vec(), bad_keys, ps.to_vec(), portals.to_vec()).is_err()
        );
        // truncated portal arena
        assert!(FlatLabels::from_parts(
            es.to_vec(),
            keys.to_vec(),
            ps.to_vec(),
            portals[..portals.len() - 1].to_vec()
        )
        .is_err());
    }

    #[test]
    fn empty_labels_flatten() {
        let flat = FlatLabels::from_labels(&[DistanceLabel::default(), DistanceLabel::default()]);
        assert_eq!(flat.num_labels(), 2);
        assert_eq!(flat.num_entries(), 0);
        assert_eq!(flat.label(NodeId(1)).entries().count(), 0);
        assert_eq!(flat.to_labels().len(), 2);
    }
}
