//! Parallel batch queries: serve a pair list across worker threads.
//!
//! A production oracle answers streams of queries, not single pairs.
//! [`BatchQueryEngine`] fans a pair list out across a
//! [`psep_core::exec::ShardedRunner`] — `std::thread` workers over the
//! shared [`FlatLabels`] arena (reads only — no locks) — and the runner
//! stitches the answers back in input order, so `query_many` is
//! observationally identical to a sequential `query` loop. Workers skip
//! per-query instrumentation and publish aggregated per-thread counters
//! (`oracle.batch.workerNN.pairs`) once per run — experiment E3t
//! measures the resulting `oracle.batch.pairs_per_sec` — plus
//! per-worker candidates/latency histograms that snapshots roll up into
//! `oracle.batch.candidates` / `oracle.batch.latency_ns`
//! thread-count-independently.
//!
//! [`FlatLabels`]: crate::flat::FlatLabels

use psep_core::exec::{ShardObs, ShardedRunner};
use psep_graph::graph::{NodeId, Weight};

use crate::error::Error;
use crate::oracle::DistanceOracle;

/// Counter names for batch-query workers.
const BATCH_OBS: ShardObs = ShardObs {
    prefix: "oracle.batch",
    items: "pairs",
    units: "candidates",
};

/// A reusable parallel query engine with a fixed thread budget.
#[derive(Clone, Copy, Debug)]
pub struct BatchQueryEngine {
    runner: ShardedRunner,
}

impl Default for BatchQueryEngine {
    fn default() -> Self {
        BatchQueryEngine::new(0)
    }
}

impl BatchQueryEngine {
    /// An engine with `threads` workers (`0` means the machine's
    /// available parallelism, honoring `PSEP_THREADS`).
    pub fn new(threads: usize) -> Self {
        BatchQueryEngine {
            runner: ShardedRunner::new(threads).min_chunk(512),
        }
    }

    /// Sets the minimum pairs per worker — below it, extra threads cost
    /// more to start than they save (default 512).
    pub fn min_chunk(mut self, min_chunk: usize) -> Self {
        self.runner = self.runner.min_chunk(min_chunk);
        self
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.runner.threads()
    }

    /// Answers every pair, in input order.
    ///
    /// # Panics
    ///
    /// Panics if any vertex id is out of range; [`Self::try_run`]
    /// validates up front and returns an error instead.
    pub fn run(&self, oracle: &DistanceOracle, pairs: &[(NodeId, NodeId)]) -> Vec<Option<Weight>> {
        psep_obs::counter!("oracle.batch.runs").incr();
        let mut scratches: Vec<_> = (0..self.runner.worker_count(pairs.len()))
            .map(|w| BATCH_OBS.worker_hists(w))
            .collect();
        let (answers, scanned) =
            self.runner
                .run(pairs, Some(&BATCH_OBS), &mut scratches, |hists, &(u, v)| {
                    let t0 = psep_obs::now_if_enabled();
                    let (answer, scanned) = oracle.query_uncounted(u, v);
                    hists.record(scanned, t0);
                    (answer, scanned)
                });
        psep_obs::counter!("oracle.batch.pairs").add(pairs.len() as u64);
        psep_obs::counter!("oracle.batch.candidates_scanned").add(scanned);
        answers
    }

    /// [`Self::run`] with every vertex id validated first; a bad request
    /// is an [`Error::NodeOutOfRange`], not a worker panic.
    pub fn try_run(
        &self,
        oracle: &DistanceOracle,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<Option<Weight>>, Error> {
        let n = oracle.num_nodes();
        for &(u, v) in pairs {
            for node in [u, v] {
                if node.index() >= n {
                    return Err(Error::NodeOutOfRange { node, num_nodes: n });
                }
            }
        }
        Ok(self.run(oracle, pairs))
    }
}

impl DistanceOracle {
    /// Answers every `(u, v)` pair, in input order, chunked across the
    /// machine's available parallelism — equivalent to (and on
    /// multi-core hardware much faster than) a sequential
    /// [`DistanceOracle::query`] loop.
    ///
    /// # Panics
    ///
    /// Panics if any vertex id is out of range; use
    /// [`BatchQueryEngine::try_run`] to validate instead.
    pub fn query_many(&self, pairs: &[(NodeId, NodeId)]) -> Vec<Option<Weight>> {
        BatchQueryEngine::default().run(self, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_core::strategy::AutoStrategy;
    use psep_core::DecompositionTree;
    use psep_graph::generators::grids;
    use psep_graph::Graph;

    fn grid_oracle(side: usize) -> (Graph, DistanceOracle) {
        let g = grids::grid2d(side, side, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let o = crate::oracle::build_oracle(&g, &tree, crate::oracle::OracleParams::default());
        (g, o)
    }

    fn all_pairs(n: u32) -> Vec<(NodeId, NodeId)> {
        (0..n)
            .flat_map(|u| (0..n).map(move |v| (NodeId(u), NodeId(v))))
            .collect()
    }

    #[test]
    fn query_many_matches_sequential_queries() {
        let (_, o) = grid_oracle(7);
        let pairs = all_pairs(49);
        let sequential: Vec<_> = pairs.iter().map(|&(u, v)| o.query(u, v)).collect();
        assert_eq!(o.query_many(&pairs), sequential);
        for threads in [1, 2, 3, 8] {
            let engine = BatchQueryEngine::new(threads).min_chunk(16);
            assert_eq!(engine.run(&o, &pairs), sequential, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_tiny_batches() {
        let (_, o) = grid_oracle(3);
        assert_eq!(o.query_many(&[]), Vec::<Option<Weight>>::new());
        let one = [(NodeId(0), NodeId(8))];
        assert_eq!(
            BatchQueryEngine::new(8).run(&o, &one),
            vec![o.query(NodeId(0), NodeId(8))]
        );
    }

    #[test]
    fn try_run_rejects_out_of_range_without_spawning() {
        let (_, o) = grid_oracle(4);
        let engine = BatchQueryEngine::new(2);
        let bad = [(NodeId(0), NodeId(1)), (NodeId(3), NodeId(99))];
        assert!(matches!(
            engine.try_run(&o, &bad),
            Err(Error::NodeOutOfRange { num_nodes: 16, .. })
        ));
        let good = [(NodeId(0), NodeId(1))];
        assert_eq!(
            engine.try_run(&o, &good).unwrap(),
            vec![o.query(NodeId(0), NodeId(1))]
        );
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(BatchQueryEngine::new(0).threads() >= 1);
    }
}
