//! Parallel batch queries: serve a pair list across worker threads.
//!
//! A production oracle answers streams of queries, not single pairs.
//! [`BatchQueryEngine`] fans a pair list out across a
//! [`psep_core::exec::ShardedRunner`] — `std::thread` workers over the
//! shared [`FlatLabels`] arena (reads only — no locks) — and the runner
//! stitches the answers back in input order, so `query_many` is
//! observationally identical to a sequential `query` loop. Workers skip
//! per-query instrumentation and publish aggregated per-thread counters
//! (`oracle.batch.workerNN.pairs`) once per run — experiment E3t
//! measures the resulting `oracle.batch.pairs_per_sec` — plus
//! per-worker candidates/latency histograms that snapshots roll up into
//! `oracle.batch.candidates` / `oracle.batch.latency_ns`
//! thread-count-independently.
//!
//! [`FlatLabels`]: crate::flat::FlatLabels

use psep_core::decomposition::DecompositionTree;
use psep_core::exec::{ShardObs, ShardedRunner, WorkerHists};
use psep_graph::dijkstra::DijkstraScratch;
use psep_graph::graph::{Graph, NodeId, Weight};

use crate::error::Error;
use crate::oracle::{DistanceOracle, JoinStats};
use crate::path::WitnessPath;

/// Counter names for batch-query workers.
const BATCH_OBS: ShardObs = ShardObs {
    prefix: "oracle.batch",
    items: "pairs",
    units: "candidates",
};

/// Counter names for batch path-reporting workers.
const PATH_OBS: ShardObs = ShardObs {
    prefix: "oracle.path.batch",
    items: "pairs",
    units: "nodes",
};

/// Claim granularity for path batches: one reconstruction runs two
/// bounded Dijkstras, so items are orders of magnitude heavier than
/// scalar queries and much smaller batches are worth fanning out.
const PATH_MIN_CHUNK: usize = 8;

/// One path-reporting worker's reusable state: its obs histogram
/// handles and a Dijkstra arena shared across the pairs it claims.
struct PathWorker {
    hists: WorkerHists,
    scratch: DijkstraScratch,
}

/// One query worker's reusable state: its obs histogram handles plus
/// the merge-join statistics it accumulates across the pairs it claims
/// (published once per run, never per pair).
struct BatchWorker {
    hists: WorkerHists,
    stats: JoinStats,
}

/// A reusable parallel query engine with a fixed thread budget.
#[derive(Clone, Copy, Debug)]
pub struct BatchQueryEngine {
    runner: ShardedRunner,
}

impl Default for BatchQueryEngine {
    fn default() -> Self {
        BatchQueryEngine::new(0)
    }
}

impl BatchQueryEngine {
    /// An engine with `threads` workers (`0` means the machine's
    /// available parallelism, honoring `PSEP_THREADS`).
    pub fn new(threads: usize) -> Self {
        BatchQueryEngine {
            runner: ShardedRunner::new(threads).min_chunk(512),
        }
    }

    /// Sets the minimum pairs per worker — below it, extra threads cost
    /// more to start than they save (default 512).
    pub fn min_chunk(mut self, min_chunk: usize) -> Self {
        self.runner = self.runner.min_chunk(min_chunk);
        self
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.runner.threads()
    }

    /// Answers every pair, in input order.
    ///
    /// # Panics
    ///
    /// Panics if any vertex id is out of range; [`Self::try_run`]
    /// validates up front and returns an error instead.
    pub fn run(&self, oracle: &DistanceOracle, pairs: &[(NodeId, NodeId)]) -> Vec<Option<Weight>> {
        psep_obs::counter!("oracle.batch.runs").incr();
        let mut scratches: Vec<BatchWorker> = (0..self.runner.worker_count(pairs.len()))
            .map(|w| BatchWorker {
                hists: BATCH_OBS.worker_hists(w),
                stats: JoinStats::default(),
            })
            .collect();
        // keyed by source vertex: each worker serves one source's queries
        // back-to-back so the source label slice stays hot in cache;
        // results land at input offsets, so answers are bit-identical to
        // the unsorted schedule.
        let (answers, scanned) = self.runner.run_keyed(
            pairs,
            Some(&BATCH_OBS),
            &mut scratches,
            |&(u, _)| u,
            |worker, &(u, v)| {
                let t0 = psep_obs::now_if_enabled();
                let (answer, stats) = oracle.query_uncounted(u, v);
                worker.stats.merge(stats);
                worker.hists.record(stats.scanned, t0);
                (answer, stats.scanned)
            },
        );
        let mut total = JoinStats::default();
        for w in &scratches {
            total.merge(w.stats);
        }
        psep_obs::counter!("oracle.batch.pairs").add(pairs.len() as u64);
        psep_obs::counter!("oracle.batch.candidates_scanned").add(scanned);
        psep_obs::counter!("oracle.batch.pruned_keys").add(total.pruned_keys);
        psep_obs::counter!("oracle.batch.pruned_portals").add(total.pruned_portals);
        answers
    }

    /// [`Self::run`] with every vertex id validated first; a bad request
    /// is an [`Error::NodeOutOfRange`], not a worker panic.
    pub fn try_run(
        &self,
        oracle: &DistanceOracle,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<Option<Weight>>, Error> {
        let n = oracle.num_nodes();
        for &(u, v) in pairs {
            for node in [u, v] {
                if node.index() >= n {
                    return Err(Error::NodeOutOfRange { node, num_nodes: n });
                }
            }
        }
        Ok(self.run(oracle, pairs))
    }

    /// Reconstructs a witness path for every pair, in input order —
    /// bit-identical to a sequential
    /// [`DistanceOracle::query_path`] loop at every thread count
    /// (reconstruction is per-pair independent and deterministic).
    ///
    /// # Panics
    ///
    /// Panics if any vertex id is out of range or the oracle disagrees
    /// with `g`/`tree`; [`Self::try_run_paths`] returns typed errors
    /// instead.
    pub fn run_paths(
        &self,
        oracle: &DistanceOracle,
        g: &Graph,
        tree: &DecompositionTree,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<Option<WitnessPath>> {
        self.try_run_paths(oracle, g, tree, pairs)
            .expect("vertex id out of range or mismatched oracle artifacts")
    }

    /// [`Self::run_paths`] with every vertex id validated first and
    /// oracle/tree disagreements surfaced as typed errors.
    pub fn try_run_paths(
        &self,
        oracle: &DistanceOracle,
        g: &Graph,
        tree: &DecompositionTree,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<Vec<Option<WitnessPath>>, Error> {
        let n = oracle.num_nodes();
        for &(u, v) in pairs {
            for node in [u, v] {
                if node.index() >= n {
                    return Err(Error::NodeOutOfRange { node, num_nodes: n });
                }
            }
        }
        psep_obs::counter!("oracle.path.batch.runs").incr();
        let runner = self.runner.min_chunk(PATH_MIN_CHUNK);
        let mut scratches: Vec<PathWorker> = (0..runner.worker_count(pairs.len()))
            .map(|w| PathWorker {
                hists: PATH_OBS.worker_hists(w),
                scratch: DijkstraScratch::new(g.num_nodes()),
            })
            .collect();
        let (results, _nodes) = runner.run_keyed(
            pairs,
            Some(&PATH_OBS),
            &mut scratches,
            |&(u, _)| u,
            |worker, &(u, v)| {
                let t0 = psep_obs::now_if_enabled();
                let out = oracle.query_path_with(g, tree, &mut worker.scratch, u, v);
                let nodes = match &out {
                    Ok(Some(p)) => p.nodes.len() as u64,
                    _ => 0,
                };
                worker.hists.record(nodes, t0);
                (out, nodes)
            },
        );
        psep_obs::counter!("oracle.path.batch.pairs").add(pairs.len() as u64);
        results.into_iter().collect()
    }
}

impl DistanceOracle<'_> {
    /// Answers every `(u, v)` pair, in input order, chunked across the
    /// machine's available parallelism — equivalent to (and on
    /// multi-core hardware much faster than) a sequential
    /// [`DistanceOracle::query`] loop.
    ///
    /// # Panics
    ///
    /// Panics if any vertex id is out of range; use
    /// [`BatchQueryEngine::try_run`] to validate instead.
    pub fn query_many(&self, pairs: &[(NodeId, NodeId)]) -> Vec<Option<Weight>> {
        BatchQueryEngine::default().run(self, pairs)
    }

    /// Reconstructs a witness path for every `(u, v)` pair, in input
    /// order, chunked across the machine's available parallelism —
    /// equivalent to a sequential [`DistanceOracle::query_path`] loop.
    ///
    /// # Panics
    ///
    /// Panics if any vertex id is out of range or the oracle disagrees
    /// with `g`/`tree`; use [`BatchQueryEngine::try_run_paths`] to
    /// validate instead.
    pub fn query_path_many(
        &self,
        g: &Graph,
        tree: &DecompositionTree,
        pairs: &[(NodeId, NodeId)],
    ) -> Vec<Option<WitnessPath>> {
        BatchQueryEngine::default().run_paths(self, g, tree, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_core::strategy::AutoStrategy;
    use psep_core::DecompositionTree;
    use psep_graph::generators::grids;
    use psep_graph::Graph;

    fn grid_oracle(side: usize) -> (Graph, DistanceOracle<'static>) {
        let g = grids::grid2d(side, side, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let o = crate::oracle::build_oracle(&g, &tree, crate::oracle::OracleParams::default());
        (g, o)
    }

    fn all_pairs(n: u32) -> Vec<(NodeId, NodeId)> {
        (0..n)
            .flat_map(|u| (0..n).map(move |v| (NodeId(u), NodeId(v))))
            .collect()
    }

    #[test]
    fn query_many_matches_sequential_queries() {
        let (_, o) = grid_oracle(7);
        let pairs = all_pairs(49);
        let sequential: Vec<_> = pairs.iter().map(|&(u, v)| o.query(u, v)).collect();
        assert_eq!(o.query_many(&pairs), sequential);
        for threads in [1, 2, 3, 4, 8] {
            let engine = BatchQueryEngine::new(threads).min_chunk(16);
            assert_eq!(engine.run(&o, &pairs), sequential, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_tiny_batches() {
        let (_, o) = grid_oracle(3);
        assert_eq!(o.query_many(&[]), Vec::<Option<Weight>>::new());
        let one = [(NodeId(0), NodeId(8))];
        assert_eq!(
            BatchQueryEngine::new(8).run(&o, &one),
            vec![o.query(NodeId(0), NodeId(8))]
        );
    }

    #[test]
    fn try_run_rejects_out_of_range_without_spawning() {
        let (_, o) = grid_oracle(4);
        let engine = BatchQueryEngine::new(2);
        let bad = [(NodeId(0), NodeId(1)), (NodeId(3), NodeId(99))];
        assert!(matches!(
            engine.try_run(&o, &bad),
            Err(Error::NodeOutOfRange { num_nodes: 16, .. })
        ));
        let good = [(NodeId(0), NodeId(1))];
        assert_eq!(
            engine.try_run(&o, &good).unwrap(),
            vec![o.query(NodeId(0), NodeId(1))]
        );
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(BatchQueryEngine::new(0).threads() >= 1);
    }

    fn grid_stack(side: usize) -> (Graph, DecompositionTree, DistanceOracle<'static>) {
        let g = grids::grid2d(side, side, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let o = crate::oracle::build_oracle(&g, &tree, crate::oracle::OracleParams::default());
        (g, tree, o)
    }

    #[test]
    fn path_batches_match_sequential_reconstruction() {
        let (g, tree, o) = grid_stack(6);
        let pairs = all_pairs(36);
        let sequential: Vec<_> = pairs
            .iter()
            .map(|&(u, v)| o.query_path(&g, &tree, u, v))
            .collect();
        assert_eq!(o.query_path_many(&g, &tree, &pairs), sequential);
        for threads in [1, 2, 3, 4, 8] {
            let engine = BatchQueryEngine::new(threads);
            assert_eq!(
                engine.run_paths(&o, &g, &tree, &pairs),
                sequential,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn try_run_paths_rejects_out_of_range_without_spawning() {
        let (g, tree, o) = grid_stack(4);
        let engine = BatchQueryEngine::new(2);
        let bad = [(NodeId(0), NodeId(1)), (NodeId(3), NodeId(99))];
        assert!(matches!(
            engine.try_run_paths(&o, &g, &tree, &bad),
            Err(Error::NodeOutOfRange { num_nodes: 16, .. })
        ));
        let good = [(NodeId(0), NodeId(15)), (NodeId(7), NodeId(7))];
        assert_eq!(
            engine.try_run_paths(&o, &g, &tree, &good).unwrap(),
            vec![
                o.query_path(&g, &tree, NodeId(0), NodeId(15)),
                o.query_path(&g, &tree, NodeId(7), NodeId(7)),
            ]
        );
        assert_eq!(
            engine.try_run_paths(&o, &g, &tree, &[]).unwrap(),
            Vec::<Option<WitnessPath>>::new()
        );
    }
}
