//! `psep-labels/v1` — the versioned, checksummed binary wire format for
//! distance labels, so an oracle can be built once, shipped, and served
//! (Theorem 2's labels as portable artifacts).
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! magic   b"PSEPLABL"                               8 bytes
//! version 1
//! epsilon f64 bit pattern, little-endian            8 bytes
//! n       number of labels
//! E       total entries        P  total portals
//! entry count per vertex                            n varints
//! keys    per vertex: first absolute, then deltas   E varints
//! portal count per entry                            E varints
//! positions per entry: first absolute, then zigzag  P varints
//! dists   raw varints                               P varints
//! crc32   over version‖…‖dists, little-endian       4 bytes
//! ```
//!
//! Keys are strictly ascending within a vertex and portal positions are
//! non-decreasing within an entry (the greedy portal scan walks the path
//! left to right), so delta coding shrinks both streams to one or two
//! bytes per element on typical oracles — `oracle.wire.bytes_per_label`
//! in experiment E3t reports the measured ratio against the in-memory
//! arena.
//!
//! Decoding verifies magic, version, and checksum before touching the
//! payload, and every structural invariant after; corrupt input yields
//! an [`Error`], never a panic.

use std::io::{Read, Write};

use psep_core::wire::{put_varint, put_zigzag, seal, unseal, Cursor, WireError};
use psep_graph::graph::Weight;

use crate::error::Error;
use crate::flat::FlatLabels;
use crate::label::PortalEntry;
use crate::oracle::DistanceOracle;

/// Magic bytes of a `psep-labels` artifact.
pub const LABELS_MAGIC: &[u8; 8] = b"PSEPLABL";
/// Current format version.
pub const LABELS_VERSION: u64 = 1;

/// Encodes a label arena and its `ε` as one `psep-labels/v1` artifact.
pub fn encode_labels(flat: &FlatLabels, epsilon: f64) -> Vec<u8> {
    let (entry_start, keys, portal_start, portals) = flat.as_parts();
    let n = entry_start.len() - 1;
    let mut payload = Vec::with_capacity(16 + n + keys.len() * 2 + portals.len() * 3);
    put_varint(&mut payload, LABELS_VERSION);
    payload.extend_from_slice(&epsilon.to_bits().to_le_bytes());
    put_varint(&mut payload, n as u64);
    put_varint(&mut payload, keys.len() as u64);
    put_varint(&mut payload, portals.len() as u64);
    for v in 0..n {
        put_varint(&mut payload, (entry_start[v + 1] - entry_start[v]) as u64);
    }
    for v in 0..n {
        let mut prev = 0u64;
        for (i, &key) in keys[entry_start[v] as usize..entry_start[v + 1] as usize]
            .iter()
            .enumerate()
        {
            put_varint(&mut payload, if i == 0 { key } else { key - prev });
            prev = key;
        }
    }
    for e in 0..keys.len() {
        put_varint(&mut payload, (portal_start[e + 1] - portal_start[e]) as u64);
    }
    for e in 0..keys.len() {
        let mut prev = 0u64;
        for (i, p) in portals[portal_start[e] as usize..portal_start[e + 1] as usize]
            .iter()
            .enumerate()
        {
            if i == 0 {
                put_varint(&mut payload, p.pos);
            } else {
                let delta = i128::from(p.pos) - i128::from(prev);
                put_zigzag(
                    &mut payload,
                    i64::try_from(delta).expect("position delta fits i64"),
                );
            }
            prev = p.pos;
        }
    }
    for p in portals {
        put_varint(&mut payload, p.dist);
    }
    seal(LABELS_MAGIC, &payload)
}

/// Decodes a `psep-labels/v1` artifact into `(labels, epsilon)`.
pub fn decode_labels(data: &[u8]) -> Result<(FlatLabels<'static>, f64), Error> {
    let payload = unseal(LABELS_MAGIC, data)?;
    let mut c = Cursor::new(payload);
    let version = c.varint()?;
    if version != LABELS_VERSION {
        return Err(WireError::UnsupportedVersion(version).into());
    }
    let epsilon = f64::from_bits(u64::from_le_bytes(
        c.bytes(8)?.try_into().expect("read exactly 8 bytes"),
    ));
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(Error::InvalidEpsilon(epsilon));
    }
    // every vertex, entry, and portal costs at least one payload byte,
    // so the input length bounds all three counts
    let limit = payload.len();
    let n = c.length(limit)?;
    let num_entries = c.length(limit)?;
    let num_portals = c.length(limit)?;
    if num_entries > u32::MAX as usize || num_portals > u32::MAX as usize {
        return Err(Error::corrupt("entry or portal count exceeds u32 offsets"));
    }

    let mut entry_start = Vec::with_capacity(n + 1);
    entry_start.push(0u32);
    for _ in 0..n {
        let count = c.length(num_entries)?;
        let next = entry_start.last().unwrap() + count as u32;
        if next as usize > num_entries {
            return Err(Error::corrupt("entry counts exceed declared total"));
        }
        entry_start.push(next);
    }
    if *entry_start.last().unwrap() as usize != num_entries {
        return Err(Error::corrupt("entry counts do not sum to declared total"));
    }

    let mut keys = Vec::with_capacity(num_entries);
    for v in 0..n {
        let count = (entry_start[v + 1] - entry_start[v]) as usize;
        let mut prev = 0u64;
        for i in 0..count {
            let raw = c.varint()?;
            let key = if i == 0 {
                raw
            } else {
                prev.checked_add(raw)
                    .ok_or(Error::corrupt("key delta overflows"))?
            };
            keys.push(key);
            prev = key;
        }
    }

    let mut portal_start = Vec::with_capacity(num_entries + 1);
    portal_start.push(0u32);
    for _ in 0..num_entries {
        let count = c.length(num_portals)?;
        let next = portal_start.last().unwrap() + count as u32;
        if next as usize > num_portals {
            return Err(Error::corrupt("portal counts exceed declared total"));
        }
        portal_start.push(next);
    }
    if *portal_start.last().unwrap() as usize != num_portals {
        return Err(Error::corrupt("portal counts do not sum to declared total"));
    }

    let mut portals: Vec<PortalEntry> = Vec::with_capacity(num_portals);
    for e in 0..num_entries {
        let count = (portal_start[e + 1] - portal_start[e]) as usize;
        let mut prev = 0u64;
        for i in 0..count {
            let pos = if i == 0 {
                c.varint()?
            } else {
                let delta = c.zigzag()?;
                let next = i128::from(prev) + i128::from(delta);
                Weight::try_from(next).map_err(|_| Error::corrupt("position delta underflows"))?
            };
            portals.push(PortalEntry { pos, dist: 0 });
            prev = pos;
        }
    }
    for p in &mut portals {
        p.dist = c.varint()?;
    }
    if c.remaining() != 0 {
        return Err(Error::corrupt("trailing bytes after payload"));
    }
    // Per-entry decode work actually performed — the zero-copy v2 load
    // path asserts these stay at zero.
    psep_obs::counter!("oracle.wire.entries_decoded").add(num_entries as u64);
    psep_obs::counter!("oracle.wire.portals_decoded").add(num_portals as u64);
    let flat = FlatLabels::from_parts(entry_start, keys, portal_start, portals)?;
    Ok((flat, epsilon))
}

// ---------------------------------------------------------------------------
// `psep-bundle/v2` labels section: aligned little-endian arrays, the
// zero-copy counterpart of `psep-labels/v1`.
//
// ```text
// epsilon       f64 LE                               8 bytes
// n, E, P       u64 LE                               24 bytes
// entry_start   (n+1) × u32 LE
// pad to 8
// keys          E × u64 LE
// portal_start  (E+1) × u32 LE
// pad to 8
// portals       P × PortalEntry {pos u64, dist u64}  LE
// ```
//
// Every column starts 8-aligned relative to the section, so on a
// little-endian host with an 8-aligned section the decoder borrows all
// four columns in place — no per-entry work at all.
// ---------------------------------------------------------------------------

use psep_core::wire::{pad_to_8, put_pod_slice, ArenaStorage, SectionReader};

/// Encodes a label arena as a raw `psep-bundle/v2` labels section
/// (no envelope; the bundle directory carries length and CRC).
pub fn encode_labels_flat(flat: &FlatLabels, epsilon: f64) -> Vec<u8> {
    let (entry_start, keys, portal_start, portals) = flat.as_parts();
    let mut out = Vec::with_capacity(
        32 + entry_start.len() * 4 + keys.len() * 8 + portal_start.len() * 4 + portals.len() * 16,
    );
    out.extend_from_slice(&epsilon.to_bits().to_le_bytes());
    out.extend_from_slice(&(flat.num_labels() as u64).to_le_bytes());
    out.extend_from_slice(&(keys.len() as u64).to_le_bytes());
    out.extend_from_slice(&(portals.len() as u64).to_le_bytes());
    put_pod_slice(&mut out, entry_start);
    pad_to_8(&mut out);
    put_pod_slice(&mut out, keys);
    put_pod_slice(&mut out, portal_start);
    pad_to_8(&mut out);
    put_pod_slice(&mut out, portals);
    out
}

/// Decodes a `psep-bundle/v2` labels section, borrowing every column in
/// place when the host and buffer allow it. All structural invariants
/// are re-validated; a header that disagrees with the payload is a
/// typed error, never a panic or misaligned read.
pub fn decode_labels_flat(bytes: &[u8]) -> Result<(FlatLabels<'_>, f64), Error> {
    let mut r = SectionReader::new(bytes);
    let epsilon = r.f64()?;
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(Error::InvalidEpsilon(epsilon));
    }
    let n = r.u64()?;
    let num_entries = r.u64()?;
    let num_portals = r.u64()?;
    if n >= u32::MAX as u64 || num_entries >= u32::MAX as u64 || num_portals > u32::MAX as u64 {
        return Err(Error::corrupt("label counts exceed u32 offsets"));
    }
    let entry_start: ArenaStorage<u32> = r.pod_slice(n as usize + 1)?;
    r.align8()?;
    let keys: ArenaStorage<u64> = r.pod_slice(num_entries as usize)?;
    let portal_start: ArenaStorage<u32> = r.pod_slice(num_entries as usize + 1)?;
    r.align8()?;
    let portals: ArenaStorage<PortalEntry> = r.pod_slice(num_portals as usize)?;
    r.finish()?;
    if entry_start.is_borrowed() {
        // borrowed in place: zero per-entry decode work
    } else {
        psep_obs::counter!("oracle.wire.entries_decoded").add(num_entries);
        psep_obs::counter!("oracle.wire.portals_decoded").add(num_portals);
    }
    let flat = FlatLabels::from_storage_parts(entry_start, keys, portal_start, portals)?;
    Ok((flat, epsilon))
}

impl DistanceOracle<'_> {
    /// Writes the oracle as one `psep-labels/v1` artifact.
    pub fn save<W: Write>(&self, mut w: W) -> Result<(), Error> {
        w.write_all(&encode_labels(self.flat_labels(), self.epsilon()))?;
        Ok(())
    }

    /// Reads a `psep-labels/v1` artifact back into a serving oracle,
    /// verifying magic, version, checksum, and structure.
    pub fn load<R: Read>(mut r: R) -> Result<DistanceOracle<'static>, Error> {
        let mut data = Vec::new();
        r.read_to_end(&mut data)?;
        let (flat, epsilon) = decode_labels(&data)?;
        Ok(DistanceOracle::from_flat(flat, epsilon))
    }

    /// [`Self::save`] to a filesystem path.
    pub fn save_to_path<P: AsRef<std::path::Path>>(&self, path: P) -> Result<(), Error> {
        self.save(std::io::BufWriter::new(std::fs::File::create(path)?))
    }

    /// [`Self::load`] from a filesystem path.
    pub fn load_from_path<P: AsRef<std::path::Path>>(
        path: P,
    ) -> Result<DistanceOracle<'static>, Error> {
        DistanceOracle::load(std::io::BufReader::new(std::fs::File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_core::strategy::AutoStrategy;
    use psep_core::DecompositionTree;
    use psep_graph::generators::grids;
    use psep_graph::NodeId;

    fn grid_oracle() -> DistanceOracle<'static> {
        let g = grids::grid2d(6, 6, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        crate::oracle::build_oracle(&g, &tree, crate::oracle::OracleParams::default())
    }

    #[test]
    fn save_load_is_bit_exact() {
        let o = grid_oracle();
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        let back = DistanceOracle::load(&buf[..]).unwrap();
        assert_eq!(back.flat_labels(), o.flat_labels());
        assert_eq!(back.epsilon(), o.epsilon());
        for u in 0..36u32 {
            for v in 0..36u32 {
                assert_eq!(
                    back.query(NodeId(u), NodeId(v)),
                    o.query(NodeId(u), NodeId(v))
                );
            }
        }
    }

    #[test]
    fn wire_is_smaller_than_arena() {
        let o = grid_oracle();
        let bytes = encode_labels(o.flat_labels(), o.epsilon());
        assert!(
            bytes.len() < o.flat_labels().heap_bytes(),
            "wire {} >= arena {}",
            bytes.len(),
            o.flat_labels().heap_bytes()
        );
    }

    #[test]
    fn corrupted_byte_is_rejected_by_checksum() {
        let o = grid_oracle();
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        for at in [9usize, buf.len() / 2, buf.len() - 5] {
            let mut bad = buf.clone();
            bad[at] ^= 0x01;
            assert!(
                matches!(
                    DistanceOracle::load(&bad[..]),
                    Err(Error::Wire(WireError::ChecksumMismatch { .. }))
                ),
                "flip at {at} not rejected"
            );
        }
    }

    #[test]
    fn truncation_bad_magic_and_version_are_rejected() {
        let o = grid_oracle();
        let mut buf = Vec::new();
        o.save(&mut buf).unwrap();
        assert!(matches!(
            DistanceOracle::load(&buf[..buf.len() - 1]),
            Err(Error::Wire(WireError::ChecksumMismatch { .. }))
        ));
        assert!(matches!(
            DistanceOracle::load(&buf[..6]),
            Err(Error::Wire(WireError::Truncated))
        ));
        let mut wrong_magic = buf.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            DistanceOracle::load(&wrong_magic[..]),
            Err(Error::Wire(WireError::BadMagic { .. }))
        ));
        // version bump with a re-sealed checksum → unsupported version
        let mut payload = buf[8..buf.len() - 4].to_vec();
        payload[0] = 2;
        let resealed = seal(LABELS_MAGIC, &payload);
        assert!(matches!(
            DistanceOracle::load(&resealed[..]),
            Err(Error::Wire(WireError::UnsupportedVersion(2)))
        ));
    }

    #[test]
    fn v2_section_roundtrips_borrowed_and_owned() {
        let o = grid_oracle();
        let sec = encode_labels_flat(o.flat_labels(), o.epsilon());
        // canonical: re-encoding a decoded section is bit-identical
        let aligned = psep_core::wire::AlignedBytes::from_slice(&sec);
        let (flat, eps) = decode_labels_flat(&aligned).unwrap();
        assert_eq!(eps, o.epsilon());
        assert_eq!(&flat, o.flat_labels());
        if cfg!(target_endian = "little") {
            assert!(flat.is_borrowed());
            assert_eq!(flat.owned_bytes(), 0);
        }
        assert_eq!(encode_labels_flat(&flat, eps), sec);
        // unaligned input falls back to owned with identical contents
        let mut shifted = vec![0u8; 1];
        shifted.extend_from_slice(&sec);
        let (owned, eps2) = decode_labels_flat(&shifted[1..]).unwrap();
        assert_eq!(&owned, o.flat_labels());
        assert_eq!(eps2, o.epsilon());
        // and queries agree across storage modes
        let a = DistanceOracle::from_flat(flat, eps);
        let b = DistanceOracle::from_flat(owned, eps2);
        for u in 0..36u32 {
            for v in 0..36u32 {
                assert_eq!(a.query(NodeId(u), NodeId(v)), b.query(NodeId(u), NodeId(v)));
            }
        }
    }

    #[test]
    fn v2_section_rejects_header_payload_disagreement() {
        let o = grid_oracle();
        let sec = encode_labels_flat(o.flat_labels(), o.epsilon());
        // truncation at every prefix length: typed error, never a panic
        for cut in 0..sec.len().min(64) {
            assert!(decode_labels_flat(&sec[..cut]).is_err());
        }
        assert!(decode_labels_flat(&sec[..sec.len() - 1]).is_err());
        // inflated portal count: column extends past the payload
        let mut bad = sec.clone();
        let p = u64::from_le_bytes(bad[24..32].try_into().unwrap());
        bad[24..32].copy_from_slice(&(p + 1).to_le_bytes());
        assert!(decode_labels_flat(&bad).is_err());
        // trailing bytes after the last column
        let mut long = sec.clone();
        long.extend_from_slice(&[0u8; 16]);
        assert!(decode_labels_flat(&long).is_err());
    }

    #[test]
    fn structurally_corrupt_but_checksummed_payload_is_rejected() {
        // hand-build a payload whose counts disagree, with a valid crc
        let mut payload = Vec::new();
        put_varint(&mut payload, LABELS_VERSION);
        payload.extend_from_slice(&0.25f64.to_bits().to_le_bytes());
        put_varint(&mut payload, 1); // n = 1
        put_varint(&mut payload, 5); // E = 5 …
        put_varint(&mut payload, 0); // P = 0
        put_varint(&mut payload, 2); // … but vertex 0 claims 2 entries
        let sealed = seal(LABELS_MAGIC, &payload);
        assert!(DistanceOracle::load(&sealed[..]).is_err());
    }
}
