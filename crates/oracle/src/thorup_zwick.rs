//! Thorup–Zwick approximate distance oracles (JACM 2005) — the
//! general-graph baseline the paper contrasts with.
//!
//! For any integer `k ≥ 1`, the TZ oracle stores `O(k · n^{1+1/k})`
//! expected space and answers queries with stretch ≤ `2k−1`. The paper's
//! point (§1.1, §5.1) is that for *general* graphs stretch below 3
//! requires `Ω(n)`-bit labels, while `k`-path separable graphs get
//! `1+ε` with logarithmic labels — experiment E3x compares the two
//! oracles' stretch/space on the same inputs.
//!
//! Construction follows the original paper: a sampled hierarchy
//! `V = A₀ ⊇ A₁ ⊇ … ⊇ A_k = ∅`, witnesses `p_i(v)` (the nearest
//! `A_i`-vertex), and bunches
//! `B(v) = ⋃_i { w ∈ A_i \ A_{i+1} : d(w,v) < d(v, A_{i+1}) }`,
//! computed via truncated Dijkstras over the *clusters*
//! `C(w) = { v : d(w,v) < d(v, A_{i+1}) }`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use psep_graph::dijkstra::dijkstra;
use psep_graph::graph::{Graph, NodeId, Weight, INFINITY};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A Thorup–Zwick oracle with parameter `k` (stretch ≤ `2k−1`).
///
/// # Example
///
/// ```
/// use psep_graph::generators::grids;
/// use psep_graph::NodeId;
/// use psep_oracle::ThorupZwickOracle;
///
/// let g = grids::grid2d(5, 5, 1);
/// let tz = ThorupZwickOracle::build(&g, 2, 42);
/// let est = tz.query(NodeId(0), NodeId(24)).unwrap();
/// assert!(est >= 8 && est <= 3 * 8); // stretch ≤ 2k−1 = 3
/// ```
#[derive(Clone, Debug)]
pub struct ThorupZwickOracle {
    k: usize,
    /// `witness[i][v]` = `p_i(v)` and `wdist[i][v]` = `d(v, A_i)`.
    witness: Vec<Vec<NodeId>>,
    wdist: Vec<Vec<Weight>>,
    /// Bunch of each vertex: map from bunch member to its distance.
    bunch: Vec<HashMap<NodeId, Weight>>,
}

impl ThorupZwickOracle {
    /// Builds the oracle with stretch parameter `k ≥ 1` (stretch
    /// `2k−1`); sampling probability `n^{-1/k}` per level, seeded.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the graph is empty.
    pub fn build(g: &Graph, k: usize, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let n = g.num_nodes();
        assert!(n > 0, "graph must be non-empty");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let p = (n as f64).powf(-1.0 / k as f64);

        // hierarchy A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1}; A_k = ∅
        let mut levels: Vec<Vec<NodeId>> = Vec::with_capacity(k);
        levels.push(g.nodes().collect());
        for i in 1..k {
            let prev = &levels[i - 1];
            let mut next: Vec<NodeId> = prev.iter().copied().filter(|_| rng.gen_bool(p)).collect();
            // keep the hierarchy non-empty below the top so witnesses
            // exist; TZ resamples in this case, we retain one element
            if next.is_empty() {
                next.push(prev[rng.gen_range(0..prev.len())]);
            }
            levels.push(next);
        }

        // witnesses per level: multi-source Dijkstra from A_i
        let mut witness: Vec<Vec<NodeId>> = Vec::with_capacity(k);
        let mut wdist: Vec<Vec<Weight>> = Vec::with_capacity(k);
        for level in &levels {
            let sp = dijkstra(g, level);
            let mut w = vec![NodeId(0); n];
            let mut d = vec![INFINITY; n];
            for v in g.nodes() {
                if let Some(dist) = sp.dist(v) {
                    d[v.index()] = dist;
                    w[v.index()] = sp.root_of(v).expect("reached");
                }
            }
            witness.push(w);
            wdist.push(d);
        }
        // sentinel level k: d(v, A_k) = ∞
        let inf = vec![INFINITY; n];

        // bunches via clusters: for w ∈ A_i \ A_{i+1}, run Dijkstra from
        // w truncated to vertices v with d(w, v) < d(v, A_{i+1}).
        let mut bunch: Vec<HashMap<NodeId, Weight>> = vec![HashMap::new(); n];
        let mut in_next = vec![false; n];
        for i in 0..k {
            for f in in_next.iter_mut() {
                *f = false;
            }
            if i + 1 < k {
                for &v in &levels[i + 1] {
                    in_next[v.index()] = true;
                }
            }
            let next_d: &[Weight] = if i + 1 < k { &wdist[i + 1] } else { &inf };
            for &w in &levels[i] {
                if in_next[w.index()] {
                    continue; // w ∈ A_{i+1}: handled at a higher level
                }
                cluster_dijkstra(g, w, next_d, &mut bunch);
            }
        }
        // every vertex's own witness chain is implicitly in its bunch at
        // the top level; ensure v ∈ B(v) with distance 0 for uniformity
        for v in g.nodes() {
            bunch[v.index()].entry(v).or_insert(0);
        }
        ThorupZwickOracle {
            k,
            witness,
            wdist,
            bunch,
        }
    }

    /// The stretch parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Approximate distance with stretch ≤ `2k−1`; `None` if the query
    /// walk fails to connect (disconnected pair).
    pub fn query(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        if u == v {
            return Some(0);
        }
        let (mut u, mut v) = (u, v);
        let mut w = u;
        let mut i = 0usize;
        loop {
            if let Some(&dwv) = self.bunch[v.index()].get(&w) {
                // d(w, u) = d(u, A_i) because w = p_i(u) (0 at i = 0)
                let dwu = if i == 0 { 0 } else { self.wdist[i][u.index()] };
                return Some(dwu + dwv);
            }
            i += 1;
            if i >= self.k {
                return None;
            }
            std::mem::swap(&mut u, &mut v);
            if self.wdist[i][u.index()] == INFINITY {
                return None;
            }
            w = self.witness[i][u.index()];
        }
    }

    /// Total stored entries (bunch sizes) — the `O(k·n^{1+1/k})` space.
    pub fn space_entries(&self) -> usize {
        self.bunch.iter().map(|b| b.len()).sum()
    }

    /// Mean bunch size.
    pub fn mean_bunch(&self) -> f64 {
        self.space_entries() as f64 / self.bunch.len().max(1) as f64
    }
}

/// Dijkstra from `w` truncated to the cluster
/// `C(w) = { v : d(w,v) < next_d[v] }`, recording distances into the
/// bunches of cluster members.
fn cluster_dijkstra(
    g: &Graph,
    w: NodeId,
    next_d: &[Weight],
    bunch: &mut [HashMap<NodeId, Weight>],
) {
    let n = g.num_nodes();
    let mut dist: Vec<Weight> = vec![INFINITY; n];
    let mut heap: BinaryHeap<Reverse<(Weight, u32)>> = BinaryHeap::new();
    dist[w.index()] = 0;
    heap.push(Reverse((0, w.0)));
    while let Some(Reverse((d, x))) = heap.pop() {
        let x = NodeId(x);
        if d > dist[x.index()] {
            continue;
        }
        // cluster membership: strict inequality per TZ
        if d >= next_d[x.index()] {
            continue;
        }
        bunch[x.index()].insert(w, d);
        for e in g.edges(x) {
            let nd = d + e.weight;
            if nd < dist[e.to.index()] && nd < next_d[e.to.index()] {
                dist[e.to.index()] = nd;
                heap.push(Reverse((nd, e.to.0)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_graph::generators::{grids, trees};

    fn check_stretch(g: &Graph, o: &ThorupZwickOracle, max_stretch: f64) {
        for u in g.nodes() {
            let sp = dijkstra(g, &[u]);
            for v in g.nodes() {
                let Some(d) = sp.dist(v) else { continue };
                let est = o.query(u, v).expect("connected pair");
                assert!(est >= d, "{u:?}->{v:?} under-estimate {est} < {d}");
                if d > 0 {
                    assert!(
                        est as f64 <= max_stretch * d as f64 + 1e-9,
                        "{u:?}->{v:?} stretch {}",
                        est as f64 / d as f64
                    );
                }
            }
        }
    }

    #[test]
    fn k1_is_exact_apsp() {
        // k = 1: A_0 = V, bunches are full distance rows
        let g = grids::grid2d(4, 4, 1);
        let o = ThorupZwickOracle::build(&g, 1, 3);
        check_stretch(&g, &o, 1.0);
        assert_eq!(o.space_entries(), 16 * 16);
    }

    #[test]
    fn k2_stretch_at_most_three() {
        let g = grids::grid2d(6, 6, 1);
        for seed in 0..3 {
            let o = ThorupZwickOracle::build(&g, 2, seed);
            check_stretch(&g, &o, 3.0);
        }
    }

    #[test]
    fn k3_stretch_at_most_five() {
        let g = psep_graph::generators::randomize_weights(&grids::grid2d(6, 6, 1), 1, 7, 2);
        let o = ThorupZwickOracle::build(&g, 3, 5);
        check_stretch(&g, &o, 5.0);
    }

    #[test]
    fn k2_space_below_apsp() {
        let g = grids::grid2d(12, 12, 1);
        let o = ThorupZwickOracle::build(&g, 2, 7);
        assert!(
            o.space_entries() < 144 * 144 / 2,
            "space {}",
            o.space_entries()
        );
        assert!(o.mean_bunch() > 0.0);
    }

    #[test]
    fn works_on_trees() {
        let g = trees::random_weighted_tree(60, 9, 4);
        let o = ThorupZwickOracle::build(&g, 2, 1);
        check_stretch(&g, &o, 3.0);
    }

    #[test]
    fn self_query_zero() {
        let g = grids::grid2d(3, 3, 1);
        let o = ThorupZwickOracle::build(&g, 2, 0);
        assert_eq!(o.query(NodeId(4), NodeId(4)), Some(0));
    }
}
