//! Exact distance baselines the experiments compare against.

use psep_graph::dijkstra::{dijkstra, dijkstra_to};
use psep_graph::graph::{Graph, NodeId, Weight};

/// Exact-distance baseline: either precomputed all-pairs (quadratic
/// space — the thing Theorem 2 avoids) or per-query Dijkstra.
#[derive(Clone, Debug)]
pub enum ExactOracle {
    /// Full distance matrix, `n²` entries.
    Apsp {
        /// Row-major `n × n` distance matrix.
        matrix: Vec<Weight>,
        /// Number of vertices.
        n: usize,
    },
    /// On-line Dijkstra per query (no preprocessing, slow queries).
    OnLine {
        /// The graph, cloned so the oracle is self-contained.
        graph: Graph,
    },
}

impl ExactOracle {
    /// Builds the all-pairs matrix (`n` Dijkstras, `n²` space).
    pub fn build_apsp(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut matrix = Vec::with_capacity(n * n);
        for u in g.nodes() {
            let sp = dijkstra(g, &[u]);
            matrix.extend_from_slice(sp.dist_raw());
        }
        ExactOracle::Apsp { matrix, n }
    }

    /// Wraps `g` for per-query Dijkstra.
    pub fn on_line(g: &Graph) -> Self {
        ExactOracle::OnLine { graph: g.clone() }
    }

    /// Exact distance, or `None` when disconnected.
    pub fn query(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        match self {
            ExactOracle::Apsp { matrix, n } => {
                let d = matrix[u.index() * n + v.index()];
                (d != psep_graph::INFINITY).then_some(d)
            }
            ExactOracle::OnLine { graph } => dijkstra_to(graph, u, v).dist(v),
        }
    }

    /// Space in stored distance entries (0 for the on-line variant).
    pub fn space_entries(&self) -> usize {
        match self {
            ExactOracle::Apsp { matrix, .. } => matrix.len(),
            ExactOracle::OnLine { .. } => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_graph::generators::grids;

    #[test]
    fn apsp_matches_online() {
        let g = grids::grid2d(4, 5, 1);
        let a = ExactOracle::build_apsp(&g);
        let o = ExactOracle::on_line(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(a.query(u, v), o.query(u, v));
            }
        }
        assert_eq!(a.space_entries(), 400);
        assert_eq!(o.space_entries(), 0);
    }
}
