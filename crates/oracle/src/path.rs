//! Witness-path reporting: reconstruct an actual walk of the graph
//! realizing the oracle's `(1+ε)` estimate.
//!
//! A query's winning candidate is `d_J(u,p) + d_Q(p,q) + d_J(q,v)` for a
//! portal pair `(p, q)` on one separator path `Q`, where `J` is the
//! residual graph of `Q`'s `(node, group)` in the decomposition tree.
//! Each term is the cost of a real walk:
//!
//! * `d_J(u,p)` and `d_J(q,v)` are Dijkstra distances inside `J` — the
//!   exact quantity label construction stored ([`crate::label`] runs its
//!   portal Dijkstras in `SubgraphView(g, tree.residual_mask(..))`), so
//!   re-running the same deterministic Dijkstra from the portal
//!   reproduces the stored distance and yields a parent forest to walk;
//! * `d_Q(p,q) = |pos(p) − pos(q)|` is the along-path distance between
//!   two vertices of `Q`, realized by `Q`'s own vertex sequence (a
//!   minimum-cost path of `J` with strictly increasing prefix
//!   positions, since edge weights are `≥ 1`).
//!
//! Splicing the three legs at the portals gives a [`WitnessPath`] whose
//! summed edge weight **exactly equals** the scalar
//! [`DistanceOracle::query`] answer for the same pair — pinned by the
//! `path_equivalence` suite through `psep_testkit::PathChecker`.
//! Reconstruction is per-pair independent and fully deterministic
//! (Dijkstra breaks ties toward smaller ids), so batch reporting is
//! bit-identical to a sequential loop at every thread count.

use psep_core::decomposition::DecompositionTree;
use psep_core::separator::SepPath;
use psep_graph::dijkstra::DijkstraScratch;
use psep_graph::graph::{Graph, NodeId, Weight};
use psep_graph::view::SubgraphView;

use crate::error::Error;
use crate::label::unpack_key;
use crate::oracle::{merge_join_best, DistanceOracle};

/// A witness path: an actual walk of the graph whose summed edge weight
/// exactly equals the `(1+ε)` estimate the oracle reported for the same
/// pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessPath {
    /// The vertex sequence, source first and target last; a self-query
    /// is the single-vertex walk `[u]`.
    pub nodes: Vec<NodeId>,
    /// Total edge weight of the walk — exactly the scalar
    /// [`DistanceOracle::query`] answer.
    pub weight: Weight,
}

impl WitnessPath {
    /// Number of edges in the walk.
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }
}

impl DistanceOracle<'_> {
    /// Reconstructs a witness path for `query(u, v)`: a real walk of `g`
    /// from `u` to `v` whose weight exactly equals the reported `(1+ε)`
    /// estimate; `None` for disconnected pairs.
    ///
    /// `g` and `tree` must be the graph and decomposition tree this
    /// oracle was built over (the [`LocationService`] bundle holds all
    /// three together); detectable mismatches surface as typed errors
    /// from [`Self::try_query_path`].
    ///
    /// [`LocationService`]: ../path_separators/struct.LocationService.html
    ///
    /// # Panics
    ///
    /// Panics if a vertex id is out of range or the oracle disagrees
    /// with `g`/`tree`; [`Self::try_query_path`] returns typed errors
    /// instead.
    pub fn query_path(
        &self,
        g: &Graph,
        tree: &DecompositionTree,
        u: NodeId,
        v: NodeId,
    ) -> Option<WitnessPath> {
        self.try_query_path(g, tree, u, v)
            .expect("vertex id out of range or mismatched oracle artifacts")
    }

    /// [`Self::query_path`] with out-of-range vertex ids reported as
    /// [`Error::NodeOutOfRange`] and oracle/tree disagreements as typed
    /// wire-corruption errors — the serving entry point.
    pub fn try_query_path(
        &self,
        g: &Graph,
        tree: &DecompositionTree,
        u: NodeId,
        v: NodeId,
    ) -> Result<Option<WitnessPath>, Error> {
        let t0 = psep_obs::now_if_enabled();
        let mut scratch = DijkstraScratch::new(g.num_nodes());
        let out = self.query_path_with(g, tree, &mut scratch, u, v)?;
        psep_obs::counter!("oracle.path.invocations").incr();
        if let Some(p) = &out {
            psep_obs::histogram!("oracle.path.nodes").record(p.nodes.len() as u64);
        }
        if let Some(t0) = t0 {
            psep_obs::histogram!("oracle.path.latency_ns").record_elapsed(t0);
        }
        Ok(out)
    }

    /// [`Self::try_query_path`] against a caller-owned scratch arena and
    /// without per-query instrumentation — the batch engine's hot path
    /// (workers publish aggregated counters once per run instead).
    pub(crate) fn query_path_with(
        &self,
        g: &Graph,
        tree: &DecompositionTree,
        scratch: &mut DijkstraScratch,
        u: NodeId,
        v: NodeId,
    ) -> Result<Option<WitnessPath>, Error> {
        let lu = self.try_label(u)?;
        let lv = self.try_label(v)?;
        if u == v {
            return Ok(Some(WitnessPath {
                nodes: vec![u],
                weight: 0,
            }));
        }
        if g.num_nodes() != self.num_nodes() {
            return Err(Error::corrupt(
                "graph does not match the oracle's vertex count",
            ));
        }
        let (_stats, best) = merge_join_best(lu.entries_with_min(), lv.entries_with_min());
        let Some((weight, key, pu, pv)) = best else {
            return Ok(None);
        };
        // resolve the winning (node, group, path) to its separator path
        let (h, gi, pi) = unpack_key(key);
        let node = tree.nodes().get(h as usize).ok_or(Error::corrupt(
            "label references a missing decomposition node",
        ))?;
        let group = node
            .separator
            .groups
            .get(gi as usize)
            .ok_or(Error::corrupt("label references a missing separator group"))?;
        let path = group
            .paths
            .get(pi as usize)
            .ok_or(Error::corrupt("label references a missing separator path"))?;
        let ip = position_index(path, pu.pos)?;
        let iq = position_index(path, pv.pos)?;
        let p = path.vertices()[ip];
        let q = path.vertices()[iq];
        // the residual graph J the stored portal distances were measured
        // in — label construction used this exact view
        let mask = tree.residual_mask(g.num_nodes(), h as usize, gi as usize);
        if !(mask.contains(u) && mask.contains(v) && mask.contains(p) && mask.contains(q)) {
            return Err(Error::corrupt(
                "witness vertices missing from the residual graph",
            ));
        }
        let view = SubgraphView::new(g, &mask);
        let mut nodes = leg(scratch, &view, p, u, pu.dist)?; // u … p
        let leg_v = leg(scratch, &view, q, v, pv.dist)?; // v … q
                                                         // p … q along the separator path (its prefix sums realize the
                                                         // |pos(p) − pos(q)| term exactly), joints deduplicated
        if ip <= iq {
            nodes.extend_from_slice(&path.vertices()[ip + 1..=iq]);
        } else {
            nodes.extend(path.vertices()[iq..ip].iter().rev());
        }
        nodes.extend(leg_v.iter().rev().skip(1));
        Ok(Some(WitnessPath { nodes, weight }))
    }
}

/// Maps a stored portal position back to its path index. Positions are
/// strictly increasing (edge weights are `≥ 1`), so the match is unique;
/// a position no vertex has means the label and tree disagree.
fn position_index(path: &SepPath, pos: Weight) -> Result<usize, Error> {
    let (mut lo, mut hi) = (0usize, path.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if path.position(mid) < pos {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo < path.len() && path.position(lo) == pos {
        Ok(lo)
    } else {
        Err(Error::corrupt("portal position not on its separator path"))
    }
}

/// One reconstruction leg: Dijkstra from `portal` inside `view`, check
/// the stored distance is reproduced, and walk the parent forest from
/// `from` back to the portal. Returns `[from, …, portal]`.
fn leg(
    scratch: &mut DijkstraScratch,
    view: &SubgraphView<'_>,
    portal: NodeId,
    from: NodeId,
    stored: Weight,
) -> Result<Vec<NodeId>, Error> {
    scratch.run(view, &[portal]);
    if scratch.dist(from) != Some(stored) {
        return Err(Error::corrupt(
            "stored portal distance disagrees with the residual graph",
        ));
    }
    let mut out = vec![from];
    let mut cur = from;
    while let Some(parent) = scratch.parent(cur) {
        out.push(parent);
        cur = parent;
    }
    debug_assert_eq!(*out.last().unwrap(), portal);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{build_oracle, OracleParams};
    use psep_core::strategy::AutoStrategy;
    use psep_graph::dijkstra::{dijkstra, path_cost};
    use psep_graph::generators::{grids, ktree, randomize_weights};

    fn build(g: &Graph, eps: f64) -> (DecompositionTree, DistanceOracle<'_>) {
        let tree = DecompositionTree::build(g, &AutoStrategy::default());
        let o = build_oracle(
            g,
            &tree,
            OracleParams {
                epsilon: eps,
                threads: 1,
            },
        );
        (tree, o)
    }

    /// Every pair: the witness is a real walk whose weight equals the
    /// scalar query answer exactly.
    fn check_all_pairs(g: &Graph, tree: &DecompositionTree, o: &DistanceOracle) {
        for u in g.nodes() {
            let sp = dijkstra(g, &[u]);
            for v in g.nodes() {
                let est = o.query(u, v);
                let path = o.query_path(g, tree, u, v);
                match (est, path) {
                    (None, None) => assert_eq!(sp.dist(v), None),
                    (Some(est), Some(p)) => {
                        assert_eq!(p.nodes.first(), Some(&u), "{u:?}->{v:?}");
                        assert_eq!(p.nodes.last(), Some(&v), "{u:?}->{v:?}");
                        assert_eq!(p.weight, est, "{u:?}->{v:?}: weight != estimate");
                        assert_eq!(
                            path_cost(g, &p.nodes),
                            Some(est),
                            "{u:?}->{v:?}: not a walk of cost {est}"
                        );
                        assert!(p.weight >= sp.dist(v).unwrap(), "{u:?}->{v:?}");
                    }
                    (est, path) => panic!("{u:?}->{v:?}: query {est:?} but path {path:?}"),
                }
            }
        }
    }

    #[test]
    fn witness_paths_on_grid() {
        let g = grids::grid2d(7, 7, 1);
        let (tree, o) = build(&g, 0.25);
        check_all_pairs(&g, &tree, &o);
    }

    #[test]
    fn witness_paths_on_weighted_grid() {
        let g = randomize_weights(&grids::grid2d(6, 6, 1), 1, 9, 5);
        let (tree, o) = build(&g, 0.25);
        check_all_pairs(&g, &tree, &o);
    }

    #[test]
    fn witness_paths_on_k_tree() {
        let g = ktree::random_weighted_k_tree(40, 3, 5, 11).graph;
        let (tree, o) = build(&g, 0.5);
        check_all_pairs(&g, &tree, &o);
    }

    #[test]
    fn self_query_is_a_single_vertex_walk() {
        let g = grids::grid2d(4, 4, 1);
        let (tree, o) = build(&g, 0.5);
        assert_eq!(
            o.query_path(&g, &tree, NodeId(5), NodeId(5)),
            Some(WitnessPath {
                nodes: vec![NodeId(5)],
                weight: 0
            })
        );
    }

    #[test]
    fn disconnected_pairs_report_no_path() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        let (tree, o) = build(&g, 0.5);
        assert_eq!(o.query_path(&g, &tree, NodeId(0), NodeId(2)), None);
        let p = o.query_path(&g, &tree, NodeId(0), NodeId(1)).unwrap();
        assert_eq!(p.nodes, vec![NodeId(0), NodeId(1)]);
        assert_eq!(p.weight, 1);
        assert_eq!(p.hops(), 1);
    }

    #[test]
    fn try_query_path_rejects_out_of_range_and_mismatched_graphs() {
        let g = grids::grid2d(4, 4, 1);
        let (tree, o) = build(&g, 0.5);
        assert!(matches!(
            o.try_query_path(&g, &tree, NodeId(0), NodeId(16)),
            Err(Error::NodeOutOfRange { num_nodes: 16, .. })
        ));
        // a graph with a different vertex count is rejected, not queried
        let other = grids::grid2d(5, 5, 1);
        assert!(matches!(
            o.try_query_path(&other, &tree, NodeId(0), NodeId(1)),
            Err(Error::Wire(_))
        ));
    }
}
