//! The `(1+ε)`-approximate distance oracle (Theorem 2): all labels plus a
//! merge-join query.

use psep_core::decomposition::DecompositionTree;
use psep_graph::graph::{Graph, NodeId, Weight, INFINITY};

use crate::label::{build_labels, label_stats, DistanceLabel, LabelStats};

/// Construction parameters for [`build_oracle`].
#[derive(Clone, Copy, Debug)]
pub struct OracleParams {
    /// Approximation parameter: queries return at most `(1+ε) · d`.
    pub epsilon: f64,
    /// Worker threads for label construction.
    pub threads: usize,
}

impl Default for OracleParams {
    fn default() -> Self {
        OracleParams {
            epsilon: 0.25,
            threads: 1,
        }
    }
}

impl OracleParams {
    /// Default parameters with `threads` set to the machine's available
    /// parallelism (1 if it cannot be determined).
    pub fn with_available_threads() -> Self {
        OracleParams {
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            ..OracleParams::default()
        }
    }
}

/// The distance oracle: one [`DistanceLabel`] per vertex.
///
/// Queries satisfy `d(u,v) ≤ query(u,v) ≤ (1+ε) · d(u,v)` for connected
/// pairs (`None` for disconnected pairs), because:
///
/// * every candidate `d_J(u,p) + d_Q(p,q) + d_J(q,v)` is the cost of a
///   real walk of `G` (never an underestimate);
/// * at the deepest common component the first-crossed-group argument
///   produces a candidate within `1+ε` (see the crate docs).
#[derive(Clone, Debug)]
pub struct DistanceOracle {
    labels: Vec<DistanceLabel>,
    epsilon: f64,
}

/// Builds the oracle for `g` over the decomposition `tree`.
///
/// # Example
///
/// ```
/// use psep_core::{DecompositionTree, AutoStrategy};
/// use psep_graph::generators::grids;
/// use psep_graph::NodeId;
/// use psep_oracle::oracle::{build_oracle, OracleParams};
///
/// let g = grids::grid2d(6, 6, 1);
/// let tree = DecompositionTree::build(&g, &AutoStrategy::default());
/// let oracle = build_oracle(&g, &tree, OracleParams { epsilon: 0.25, threads: 1 });
/// let est = oracle.query(NodeId(0), NodeId(35)).unwrap();
/// assert!((10..=12).contains(&est)); // true distance 10, ε = 0.25
/// ```
pub fn build_oracle(g: &Graph, tree: &DecompositionTree, params: OracleParams) -> DistanceOracle {
    DistanceOracle {
        labels: build_labels(g, tree, params.epsilon, params.threads),
        epsilon: params.epsilon,
    }
}

impl DistanceOracle {
    /// Builds an oracle directly from labels (e.g. labels shipped from a
    /// distributed deployment — Theorem 2's labeling-scheme reading).
    pub fn from_labels(labels: Vec<DistanceLabel>, epsilon: f64) -> Self {
        DistanceOracle { labels, epsilon }
    }

    /// The approximation parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The labels (index = vertex id).
    pub fn labels(&self) -> &[DistanceLabel] {
        &self.labels
    }

    /// The label of `v` — what a distributed deployment would store at
    /// `v` (Theorem 2's labeling scheme).
    pub fn label(&self, v: NodeId) -> &DistanceLabel {
        &self.labels[v.index()]
    }

    /// `(1+ε)`-approximate distance between `u` and `v`; `None` if
    /// disconnected.
    pub fn query(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        if u == v {
            return Some(0);
        }
        let est = query_labels(&self.labels[u.index()], &self.labels[v.index()]);
        (est != INFINITY).then_some(est)
    }

    /// Total space in portal entries (the `O(k/ε · n log n)` of
    /// Theorem 2).
    pub fn space_entries(&self) -> usize {
        self.labels.iter().map(|l| l.size()).sum()
    }

    /// Label statistics.
    pub fn stats(&self) -> LabelStats {
        label_stats(&self.labels)
    }
}

/// The witness of a query: which separator path realized the minimum and
/// through which portal pair — Theorem 2's estimate made explainable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryWitness {
    /// Decomposition node of the crossing path.
    pub node: u32,
    /// Group index.
    pub group: u16,
    /// Path index within the group.
    pub path: u16,
    /// `d_J(u, p)` for u's portal `p`.
    pub dist_u: Weight,
    /// Along-path distance `d_Q(p, q)`.
    pub along: Weight,
    /// `d_J(v, q)` for v's portal `q`.
    pub dist_v: Weight,
}

/// Like [`query_labels`] but also returns the witnessing entry and
/// portal pair. `None` when the labels share no entry.
pub fn query_labels_explain(
    lu: &DistanceLabel,
    lv: &DistanceLabel,
) -> Option<(Weight, QueryWitness)> {
    let mut best: Option<(Weight, QueryWitness)> = None;
    let (a, b) = (&lu.entries, &lv.entries);
    let (mut i, mut j) = (0usize, 0usize);
    let mut scanned: u64 = 0;
    while i < a.len() && j < b.len() {
        match a[i].key().cmp(&b[j].key()) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                scanned += (a[i].portals.len() * b[j].portals.len()) as u64;
                for pu in &a[i].portals {
                    for pv in &b[j].portals {
                        let along = pu.pos.abs_diff(pv.pos);
                        let cand = pu.dist.saturating_add(along).saturating_add(pv.dist);
                        if best.is_none_or(|(c, _)| cand < c) {
                            best = Some((
                                cand,
                                QueryWitness {
                                    node: a[i].node,
                                    group: a[i].group,
                                    path: a[i].path,
                                    dist_u: pu.dist,
                                    along,
                                    dist_v: pv.dist,
                                },
                            ));
                        }
                    }
                }
                i += 1;
                j += 1;
            }
        }
    }
    psep_obs::counter!("oracle.query.invocations").incr();
    psep_obs::counter!("oracle.query.candidates_scanned").add(scanned);
    best
}

/// Label-only distance estimate — usable by any two parties holding just
/// the two labels (the distributed reading of Theorem 2). Returns
/// [`INFINITY`] when the labels share no entry.
pub fn query_labels(lu: &DistanceLabel, lv: &DistanceLabel) -> Weight {
    let mut best = INFINITY;
    let (a, b) = (&lu.entries, &lv.entries);
    let (mut i, mut j) = (0usize, 0usize);
    // Candidates accumulate locally; the query loop is the oracle's hot
    // path and must not touch shared counters per portal pair.
    let mut scanned: u64 = 0;
    while i < a.len() && j < b.len() {
        match a[i].key().cmp(&b[j].key()) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                scanned += (a[i].portals.len() * b[j].portals.len()) as u64;
                for pu in &a[i].portals {
                    for pv in &b[j].portals {
                        let along = pu.pos.abs_diff(pv.pos);
                        let cand = pu.dist.saturating_add(along).saturating_add(pv.dist);
                        best = best.min(cand);
                    }
                }
                i += 1;
                j += 1;
            }
        }
    }
    psep_obs::counter!("oracle.query.invocations").incr();
    psep_obs::counter!("oracle.query.candidates_scanned").add(scanned);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_core::strategy::{AutoStrategy, IterativeStrategy, TreeCenterStrategy};
    use psep_core::DecompositionTree;
    use psep_graph::dijkstra::dijkstra;
    use psep_graph::generators::{grids, ktree, planar_families, special, trees};

    /// Exhaustively checks `d ≤ est ≤ (1+ε)·d` on all pairs.
    fn check_stretch(g: &Graph, oracle: &DistanceOracle, eps: f64) {
        for u in g.nodes() {
            let sp = dijkstra(g, &[u]);
            for v in g.nodes() {
                match sp.dist(v) {
                    None => assert_eq!(oracle.query(u, v), None),
                    Some(d) => {
                        let est = oracle.query(u, v).expect("connected pair");
                        assert!(est >= d, "{u:?}->{v:?}: est {est} < d {d}");
                        assert!(
                            est as f64 <= (1.0 + eps) * d as f64 + 1e-9,
                            "{u:?}->{v:?}: est {est} > (1+{eps})·{d}"
                        );
                    }
                }
            }
        }
    }

    fn build(g: &Graph, eps: f64) -> DistanceOracle {
        let tree = DecompositionTree::build(g, &AutoStrategy::default());
        build_oracle(
            g,
            &tree,
            OracleParams {
                epsilon: eps,
                threads: 1,
            },
        )
    }

    #[test]
    fn exact_on_identical_vertices() {
        let g = grids::grid2d(4, 4, 1);
        let o = build(&g, 0.5);
        assert_eq!(o.query(NodeId(5), NodeId(5)), Some(0));
    }

    #[test]
    fn stretch_on_grid() {
        let g = grids::grid2d(7, 7, 1);
        let o = build(&g, 0.25);
        check_stretch(&g, &o, 0.25);
    }

    #[test]
    fn stretch_on_weighted_grid() {
        let base = grids::grid2d(6, 6, 1);
        let g = psep_graph::generators::randomize_weights(&base, 1, 9, 5);
        let o = build(&g, 0.25);
        check_stretch(&g, &o, 0.25);
    }

    #[test]
    fn stretch_on_random_tree() {
        let g = trees::random_weighted_tree(50, 7, 3);
        let tree = DecompositionTree::build(&g, &TreeCenterStrategy);
        let o = build_oracle(
            &g,
            &tree,
            OracleParams {
                epsilon: 0.1,
                threads: 1,
            },
        );
        check_stretch(&g, &o, 0.1);
    }

    #[test]
    fn stretch_on_k_tree() {
        let kt = ktree::random_weighted_k_tree(40, 3, 5, 11);
        let o = build(&kt.graph, 0.5);
        check_stretch(&kt.graph, &o, 0.5);
    }

    #[test]
    fn stretch_on_planar() {
        let g = planar_families::triangulated_grid(6, 6, 9);
        let o = build(&g, 0.25);
        check_stretch(&g, &o, 0.25);
    }

    #[test]
    fn stretch_on_mesh_with_apex() {
        let g = special::mesh_with_apex(5);
        let tree = DecompositionTree::build(&g, &IterativeStrategy::default());
        let o = build_oracle(
            &g,
            &tree,
            OracleParams {
                epsilon: 0.25,
                threads: 1,
            },
        );
        check_stretch(&g, &o, 0.25);
    }

    #[test]
    fn coarse_epsilon_still_bounded() {
        // very loose ε keeps the guarantee d ≤ est ≤ (1+ε)d
        let g = grids::grid2d(6, 6, 1);
        let o = build(&g, 4.0);
        check_stretch(&g, &o, 4.0);
        // and uses no more space than a tight ε
        let tight = build(&g, 0.1);
        assert!(o.space_entries() <= tight.space_entries());
    }

    #[test]
    fn disconnected_pairs_return_none() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        let o = build(&g, 0.5);
        assert_eq!(o.query(NodeId(0), NodeId(2)), None);
        assert_eq!(o.query(NodeId(0), NodeId(1)), Some(1));
    }

    #[test]
    fn label_query_is_symmetric() {
        let g = grids::grid2d(5, 5, 1);
        let o = build(&g, 0.25);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(o.query(u, v), o.query(v, u));
            }
        }
    }

    #[test]
    fn explain_agrees_with_query_and_decomposes_the_estimate() {
        let g = grids::grid2d(6, 6, 1);
        let o = build(&g, 0.25);
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let est = o.query(u, v).unwrap();
                let (w_est, w) = query_labels_explain(o.label(u), o.label(v)).unwrap();
                assert_eq!(est, w_est);
                assert_eq!(w.dist_u + w.along + w.dist_v, est);
            }
        }
    }

    #[test]
    fn space_accounting() {
        let g = grids::grid2d(6, 6, 1);
        let o = build(&g, 0.25);
        let total: usize = o.labels().iter().map(|l| l.size()).sum();
        assert_eq!(o.space_entries(), total);
        assert!(total > 0);
    }
}
