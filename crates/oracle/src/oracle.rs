//! The `(1+ε)`-approximate distance oracle (Theorem 2): all labels in a
//! flat arena plus a merge-join query.

use psep_core::decomposition::DecompositionTree;
use psep_graph::graph::{Graph, NodeId, Weight, INFINITY};

use crate::error::Error;
use crate::flat::{FlatLabels, LabelRef};
use crate::label::{build_labels, unpack_key, DistanceLabel, LabelStats, PortalEntry};

/// Construction parameters for [`build_oracle`].
#[derive(Clone, Copy, Debug)]
pub struct OracleParams {
    /// Approximation parameter: queries return at most `(1+ε) · d`.
    pub epsilon: f64,
    /// Worker threads for label construction.
    pub threads: usize,
}

impl Default for OracleParams {
    fn default() -> Self {
        OracleParams {
            epsilon: 0.25,
            threads: 1,
        }
    }
}

impl OracleParams {
    /// Default parameters with `threads` set by
    /// [`psep_core::available_threads`]: the `PSEP_THREADS` environment
    /// variable if set, else the machine's available parallelism (1 if
    /// it cannot be determined).
    pub fn with_available_threads() -> Self {
        OracleParams {
            threads: psep_core::available_threads(),
            ..OracleParams::default()
        }
    }
}

/// Validating builder for [`DistanceOracle`] — the fallible counterpart
/// of [`build_oracle`].
///
/// # Example
///
/// ```
/// use psep_core::{DecompositionTree, AutoStrategy};
/// use psep_graph::generators::grids;
/// use psep_graph::NodeId;
/// use psep_oracle::OracleBuilder;
///
/// let g = grids::grid2d(6, 6, 1);
/// let tree = DecompositionTree::build(&g, &AutoStrategy::default());
/// let oracle = OracleBuilder::new()
///     .epsilon(0.25)
///     .threads(2)
///     .build(&g, &tree)
///     .unwrap();
/// assert!(oracle.query(NodeId(0), NodeId(35)).is_some());
/// assert!(OracleBuilder::new().epsilon(-1.0).build(&g, &tree).is_err());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct OracleBuilder {
    epsilon: f64,
    threads: usize,
}

impl Default for OracleBuilder {
    fn default() -> Self {
        let p = OracleParams::default();
        OracleBuilder {
            epsilon: p.epsilon,
            threads: p.threads,
        }
    }
}

impl OracleBuilder {
    /// A builder with the default parameters (`ε = 0.25`, one thread).
    pub fn new() -> Self {
        OracleBuilder::default()
    }

    /// Sets the approximation parameter `ε` (validated in
    /// [`Self::build`]: must be positive and finite).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the number of construction worker threads; `0` means
    /// auto-detect via [`psep_core::available_threads`] (`PSEP_THREADS`
    /// or the machine's available parallelism).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builds the oracle, rejecting invalid parameters as
    /// [`Error::InvalidEpsilon`] instead of panicking.
    pub fn build<'a>(
        self,
        g: &Graph,
        tree: &DecompositionTree,
    ) -> Result<DistanceOracle<'a>, Error> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(Error::InvalidEpsilon(self.epsilon));
        }
        let threads = if self.threads == 0 {
            psep_core::available_threads()
        } else {
            self.threads
        };
        Ok(build_oracle(
            g,
            tree,
            OracleParams {
                epsilon: self.epsilon,
                threads,
            },
        ))
    }
}

/// The distance oracle: every vertex's label in one [`FlatLabels`]
/// arena.
///
/// Queries satisfy `d(u,v) ≤ query(u,v) ≤ (1+ε) · d(u,v)` for connected
/// pairs (`None` for disconnected pairs), because:
///
/// * every candidate `d_J(u,p) + d_Q(p,q) + d_J(q,v)` is the cost of a
///   real walk of `G` (never an underestimate);
/// * at the deepest common component the first-crossed-group argument
///   produces a candidate within `1+ε` (see the crate docs).
#[derive(Clone, Debug)]
pub struct DistanceOracle<'a> {
    flat: FlatLabels<'a>,
    epsilon: f64,
}

/// Builds the oracle for `g` over the decomposition `tree`.
///
/// # Example
///
/// ```
/// use psep_core::{DecompositionTree, AutoStrategy};
/// use psep_graph::generators::grids;
/// use psep_graph::NodeId;
/// use psep_oracle::oracle::{build_oracle, OracleParams};
///
/// let g = grids::grid2d(6, 6, 1);
/// let tree = DecompositionTree::build(&g, &AutoStrategy::default());
/// let oracle = build_oracle(&g, &tree, OracleParams { epsilon: 0.25, threads: 1 });
/// let est = oracle.query(NodeId(0), NodeId(35)).unwrap();
/// assert!((10..=12).contains(&est)); // true distance 10, ε = 0.25
/// ```
pub fn build_oracle<'a>(
    g: &Graph,
    tree: &DecompositionTree,
    params: OracleParams,
) -> DistanceOracle<'a> {
    let labels = build_labels(g, tree, params.epsilon, params.threads);
    DistanceOracle {
        flat: FlatLabels::from_labels(&labels),
        epsilon: params.epsilon,
    }
}

impl<'a> DistanceOracle<'a> {
    /// Builds an oracle directly from nested labels (e.g. labels shipped
    /// from a distributed deployment — Theorem 2's labeling-scheme
    /// reading).
    pub fn from_labels(labels: Vec<DistanceLabel>, epsilon: f64) -> Self {
        DistanceOracle {
            flat: FlatLabels::from_labels(&labels),
            epsilon,
        }
    }

    /// Builds an oracle from an already-flat arena (e.g. one loaded or
    /// mapped from the wire format).
    pub fn from_flat(flat: FlatLabels<'a>, epsilon: f64) -> Self {
        DistanceOracle { flat, epsilon }
    }

    /// The approximation parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The flat label arena.
    pub fn flat_labels(&self) -> &FlatLabels<'a> {
        &self.flat
    }

    /// True when the label arena is served in place from an external
    /// buffer (zero-copy mapped bundle).
    pub fn is_borrowed(&self) -> bool {
        self.flat.is_borrowed()
    }

    /// Copies any borrowed storage onto the heap, detaching the oracle
    /// from the buffer it was mapped from.
    pub fn into_owned(self) -> DistanceOracle<'static> {
        DistanceOracle {
            flat: self.flat.into_owned(),
            epsilon: self.epsilon,
        }
    }

    /// The labels in nested per-vertex form (materialized; the oracle
    /// itself stores only the flat arena).
    pub fn to_labels(&self) -> Vec<DistanceLabel> {
        self.flat.to_labels()
    }

    /// Number of vertices the oracle covers.
    pub fn num_nodes(&self) -> usize {
        self.flat.num_labels()
    }

    /// The label of `v` — what a distributed deployment would store at
    /// `v` (Theorem 2's labeling scheme).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; [`Self::try_label`] returns an
    /// error instead.
    pub fn label(&self, v: NodeId) -> LabelRef<'_> {
        self.flat.label(v)
    }

    /// The label of `v`, or [`Error::NodeOutOfRange`].
    pub fn try_label(&self, v: NodeId) -> Result<LabelRef<'_>, Error> {
        self.flat.try_label(v)
    }

    /// `(1+ε)`-approximate distance between `u` and `v`; `None` if
    /// disconnected.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range; [`Self::try_query`] returns
    /// an error instead.
    pub fn query(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.try_query(u, v).unwrap()
    }

    /// `(1+ε)`-approximate distance, with out-of-range vertex ids
    /// reported as [`Error::NodeOutOfRange`] — the serving entry point:
    /// a malformed request must not take the process down.
    pub fn try_query(&self, u: NodeId, v: NodeId) -> Result<Option<Weight>, Error> {
        let t0 = psep_obs::now_if_enabled();
        let lu = self.flat.try_label(u)?;
        let lv = self.flat.try_label(v)?;
        if u == v {
            return Ok(Some(0));
        }
        let (stats, best) = merge_join_best(lu.entries_with_min(), lv.entries_with_min());
        record_query(stats);
        if let Some(t0) = t0 {
            psep_obs::histogram!("oracle.query.latency_ns").record_elapsed(t0);
        }
        Ok(best.map(|(w, ..)| w))
    }

    /// Like [`Self::try_query`] but narrates the merge-join into `ring`:
    /// a [`TraceEvent::QueryStart`], one [`TraceEvent::MergeKey`] per
    /// aligned `(node, group, path)` key, and a closing
    /// [`TraceEvent::QueryEnd`] with candidates scanned and wall time —
    /// enough to explain why *this* query was slow. Tracing is per-call
    /// opt-in and records regardless of the global obs gate.
    pub fn query_traced(
        &self,
        u: NodeId,
        v: NodeId,
        ring: &mut psep_obs::TraceRing,
    ) -> Result<Option<Weight>, Error> {
        let t0 = std::time::Instant::now();
        ring.push(psep_obs::TraceEvent::QueryStart {
            u: u.index() as u32,
            v: v.index() as u32,
        });
        self.flat.try_label(u)?;
        self.flat.try_label(v)?;
        let (stats, result) = if u == v {
            (JoinStats::default(), Some(0))
        } else {
            let (stats, best) = self.join_core(u, v, |key, pairs| {
                ring.push(psep_obs::TraceEvent::MergeKey { key, pairs });
            });
            record_query(stats);
            (stats, best.map(|(w, ..)| w))
        };
        ring.push(psep_obs::TraceEvent::QueryEnd {
            found: result.is_some(),
            dist: result.unwrap_or(0),
            candidates: stats.scanned,
            elapsed_ns: t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        });
        Ok(result)
    }

    /// The one pruned merge-join both uninstrumented query paths share
    /// (the batch hot path and the traced path differ only in their
    /// per-key observer).
    fn join_core(
        &self,
        u: NodeId,
        v: NodeId,
        on_key: impl FnMut(u64, u64),
    ) -> (JoinStats, Option<BestCandidate>) {
        merge_join_core::<_, _, _, true>(
            self.flat.label(u).entries_with_min(),
            self.flat.label(v).entries_with_min(),
            on_key,
        )
    }

    /// Like [`Self::query`] but skips per-query instrumentation — the
    /// batch engine's hot path; workers publish aggregated counters once
    /// per chunk instead.
    pub(crate) fn query_uncounted(&self, u: NodeId, v: NodeId) -> (Option<Weight>, JoinStats) {
        if u == v {
            return (Some(0), JoinStats::default());
        }
        let (stats, best) = self.join_core(u, v, |_, _| ());
        (best.map(|(w, ..)| w), stats)
    }

    /// [`Self::query`] plus the merge-join statistics of the call
    /// (candidates scanned, keys and portal tails pruned), without
    /// touching global instrumentation — the benchmark harness's probe
    /// into the pruned production path.
    pub fn query_with_stats(&self, u: NodeId, v: NodeId) -> (Option<Weight>, JoinStats) {
        self.query_uncounted(u, v)
    }

    /// Reference query that scans every candidate of every matched key —
    /// the unpruned baseline the pruned path is tested and benchmarked
    /// against. Answers (and witnesses, see [`Self::explain_unpruned`])
    /// are provably identical to the production path; only the
    /// [`JoinStats`] differ.
    pub fn query_unpruned(&self, u: NodeId, v: NodeId) -> (Option<Weight>, JoinStats) {
        if u == v {
            return (Some(0), JoinStats::default());
        }
        let (stats, best) = merge_join_core::<_, _, _, false>(
            self.flat.label(u).entries_with_min(),
            self.flat.label(v).entries_with_min(),
            |_, _| (),
        );
        (best.map(|(w, ..)| w), stats)
    }

    /// Like [`Self::query`] but also returns the witnessing entry and
    /// portal pair. `None` when the labels share no entry (`u == v`
    /// included: a self-query crosses no separator path).
    pub fn explain(&self, u: NodeId, v: NodeId) -> Option<(Weight, QueryWitness)> {
        let (stats, best) = self.join_core(u, v, |_, _| ());
        record_query(stats);
        best.map(|(w, key, pu, pv)| (w, QueryWitness::new(key, pu, pv)))
    }

    /// [`Self::explain`] over the unpruned reference scan — the
    /// equivalence tests compare witnesses (winning key and portal pair)
    /// against the pruned path.
    pub fn explain_unpruned(&self, u: NodeId, v: NodeId) -> Option<(Weight, QueryWitness)> {
        let (_, best) = merge_join_core::<_, _, _, false>(
            self.flat.label(u).entries_with_min(),
            self.flat.label(v).entries_with_min(),
            |_, _| (),
        );
        best.map(|(w, key, pu, pv)| (w, QueryWitness::new(key, pu, pv)))
    }

    /// Total space in portal entries (the `O(k/ε · n log n)` of
    /// Theorem 2).
    pub fn space_entries(&self) -> usize {
        self.flat.num_portals()
    }

    /// Label statistics.
    pub fn stats(&self) -> LabelStats {
        self.flat.stats()
    }
}

/// The witness of a query: which separator path realized the minimum and
/// through which portal pair — Theorem 2's estimate made explainable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryWitness {
    /// Decomposition node of the crossing path.
    pub node: u32,
    /// Group index.
    pub group: u16,
    /// Path index within the group.
    pub path: u16,
    /// `d_J(u, p)` for u's portal `p`.
    pub dist_u: Weight,
    /// Along-path distance `d_Q(p, q)`.
    pub along: Weight,
    /// `d_J(v, q)` for v's portal `q`.
    pub dist_v: Weight,
}

impl QueryWitness {
    fn new(key: u64, pu: PortalEntry, pv: PortalEntry) -> Self {
        let (node, group, path) = unpack_key(key);
        QueryWitness {
            node,
            group,
            path,
            dist_u: pu.dist,
            along: pu.pos.abs_diff(pv.pos),
            dist_v: pv.dist,
        }
    }
}

/// Per-query merge-join statistics: candidates actually examined, plus
/// how much work the admissible prune bounds skipped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Portal-pair candidates whose weight was computed.
    pub scanned: u64,
    /// Matched keys skipped whole because `min_du + min_dv ≥ best`.
    pub pruned_keys: u64,
    /// Portal pairs skipped by the per-portal tail bound
    /// `d_J(u,p) + min_dv ≥ best`.
    pub pruned_portals: u64,
}

impl JoinStats {
    /// Accumulates another query's statistics (batch workers aggregate
    /// one `JoinStats` per chunk).
    pub fn merge(&mut self, other: JoinStats) {
        self.scanned += other.scanned;
        self.pruned_keys += other.pruned_keys;
        self.pruned_portals += other.pruned_portals;
    }
}

/// `(weight, key, portal_u, portal_v)` — the minimum and its witness.
type BestCandidate = (Weight, u64, PortalEntry, PortalEntry);

/// The pruned merge-join every production query path funnels through.
///
/// Returns the join statistics and the best candidate (`None` when the
/// streams share no key). Works identically over flat views
/// ([`LabelRef::entries_with_min`]) and nested labels adapted through
/// [`with_inline_mins`], so representation changes land here exactly
/// once.
pub(crate) fn merge_join_best<'a>(
    a: impl Iterator<Item = (u64, &'a [PortalEntry], Weight)>,
    b: impl Iterator<Item = (u64, &'a [PortalEntry], Weight)>,
) -> (JoinStats, Option<BestCandidate>) {
    // the no-op observer inlines away; the hot path pays nothing
    merge_join_core::<_, _, _, true>(a, b, |_, _| ())
}

/// Adapts a `(key, portals)` stream (nested labels) to the
/// `(key, portals, min_portal_dist)` triples the merge-join core
/// consumes, computing the prune bound inline. The flat arena carries
/// the bounds precomputed; nested labels pay one pass per entry.
pub(crate) fn with_inline_mins<'a>(
    it: impl Iterator<Item = (u64, &'a [PortalEntry])>,
) -> impl Iterator<Item = (u64, &'a [PortalEntry], Weight)> {
    it.map(|(k, p)| (k, p, p.iter().map(|e| e.dist).min().unwrap_or(INFINITY)))
}

/// The merge-join core: walks two ascending `(key, portals, min_dist)`
/// streams, and on each key match scans the portal-pair cross product
/// for the cheapest `d_J(u,p) + d_Q(p,q) + d_J(q,v)` candidate. The
/// per-matched-key observer feeds the traced query path (one
/// [`psep_obs::TraceEvent::MergeKey`] per aligned key — pruned keys
/// report zero pairs).
///
/// With `PRUNE` the admissible lower bounds skip work that provably
/// cannot improve the running minimum: a matched key is skipped whole
/// when `min_du + min_dv ≥ best`, and a portal's scan tail when
/// `d_J(u,p) + min_dv ≥ best`. Every skipped candidate satisfies
/// `cand ≥ bound ≥ best`, and updates use strict `<`, so the returned
/// minimum *and* witness (first minimal candidate in ascending-key scan
/// order) are identical to the `PRUNE = false` reference scan — only
/// [`JoinStats`] differ.
fn merge_join_core<'a, A, B, F, const PRUNE: bool>(
    mut a: A,
    mut b: B,
    mut on_key: F,
) -> (JoinStats, Option<BestCandidate>)
where
    A: Iterator<Item = (u64, &'a [PortalEntry], Weight)>,
    B: Iterator<Item = (u64, &'a [PortalEntry], Weight)>,
    F: FnMut(u64, u64),
{
    let mut stats = JoinStats::default();
    let mut best: Option<BestCandidate> = None;
    let (mut na, mut nb) = (a.next(), b.next());
    while let (Some((ka, pa, ma)), Some((kb, pb, mb))) = (na, nb) {
        match ka.cmp(&kb) {
            std::cmp::Ordering::Less => na = a.next(),
            std::cmp::Ordering::Greater => nb = b.next(),
            std::cmp::Ordering::Equal => {
                if PRUNE {
                    if let Some((cur, ..)) = best {
                        if ma.saturating_add(mb) >= cur {
                            stats.pruned_keys += 1;
                            on_key(ka, 0);
                            na = a.next();
                            nb = b.next();
                            continue;
                        }
                    }
                }
                let mut pairs: u64 = 0;
                for pu in pa {
                    if PRUNE {
                        if let Some((cur, ..)) = best {
                            if pu.dist.saturating_add(mb) >= cur {
                                stats.pruned_portals += pb.len() as u64;
                                continue;
                            }
                        }
                    }
                    for pv in pb {
                        let along = pu.pos.abs_diff(pv.pos);
                        let cand = pu.dist.saturating_add(along).saturating_add(pv.dist);
                        if best.is_none_or(|(c, ..)| cand < c) {
                            best = Some((cand, ka, *pu, *pv));
                        }
                    }
                    pairs += pb.len() as u64;
                }
                stats.scanned += pairs;
                on_key(ka, pairs);
                na = a.next();
                nb = b.next();
            }
        }
    }
    (stats, best)
}

/// Publishes one query's instrumentation. Candidates accumulate locally
/// in the merge-join; the query loop is the oracle's hot path and must
/// not touch shared counters per portal pair.
fn record_query(stats: JoinStats) {
    psep_obs::counter!("oracle.query.invocations").incr();
    psep_obs::counter!("oracle.query.candidates_scanned").add(stats.scanned);
    psep_obs::counter!("oracle.query.pruned_keys").add(stats.pruned_keys);
    psep_obs::counter!("oracle.query.pruned_portals").add(stats.pruned_portals);
    psep_obs::histogram!("oracle.query.candidates").record(stats.scanned);
}

/// Label-only distance estimate — usable by any two parties holding just
/// the two labels (the distributed reading of Theorem 2). Returns
/// [`INFINITY`] when the labels share no entry.
pub fn query_labels(lu: &DistanceLabel, lv: &DistanceLabel) -> Weight {
    let (stats, best) = merge_join_best(
        with_inline_mins(lu.entry_slices()),
        with_inline_mins(lv.entry_slices()),
    );
    record_query(stats);
    best.map_or(INFINITY, |(w, ..)| w)
}

/// Like [`query_labels`] but also returns the witnessing entry and
/// portal pair. `None` when the labels share no entry.
pub fn query_labels_explain(
    lu: &DistanceLabel,
    lv: &DistanceLabel,
) -> Option<(Weight, QueryWitness)> {
    let (stats, best) = merge_join_best(
        with_inline_mins(lu.entry_slices()),
        with_inline_mins(lv.entry_slices()),
    );
    record_query(stats);
    best.map(|(w, key, pu, pv)| (w, QueryWitness::new(key, pu, pv)))
}

/// Label-only distance estimate over two flat views — same contract as
/// [`query_labels`], zero materialization.
pub fn query_label_refs(lu: LabelRef<'_>, lv: LabelRef<'_>) -> Weight {
    let (stats, best) = merge_join_best(lu.entries_with_min(), lv.entries_with_min());
    record_query(stats);
    best.map_or(INFINITY, |(w, ..)| w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_core::strategy::{AutoStrategy, IterativeStrategy, TreeCenterStrategy};
    use psep_core::DecompositionTree;
    use psep_graph::dijkstra::dijkstra;
    use psep_graph::generators::{grids, ktree, planar_families, special, trees};

    /// Exhaustively checks `d ≤ est ≤ (1+ε)·d` on all pairs.
    fn check_stretch(g: &Graph, oracle: &DistanceOracle, eps: f64) {
        for u in g.nodes() {
            let sp = dijkstra(g, &[u]);
            for v in g.nodes() {
                match sp.dist(v) {
                    None => assert_eq!(oracle.query(u, v), None),
                    Some(d) => {
                        let est = oracle.query(u, v).expect("connected pair");
                        assert!(est >= d, "{u:?}->{v:?}: est {est} < d {d}");
                        assert!(
                            est as f64 <= (1.0 + eps) * d as f64 + 1e-9,
                            "{u:?}->{v:?}: est {est} > (1+{eps})·{d}"
                        );
                    }
                }
            }
        }
    }

    fn build(g: &Graph, eps: f64) -> DistanceOracle<'_> {
        let tree = DecompositionTree::build(g, &AutoStrategy::default());
        build_oracle(
            g,
            &tree,
            OracleParams {
                epsilon: eps,
                threads: 1,
            },
        )
    }

    #[test]
    fn exact_on_identical_vertices() {
        let g = grids::grid2d(4, 4, 1);
        let o = build(&g, 0.5);
        assert_eq!(o.query(NodeId(5), NodeId(5)), Some(0));
    }

    #[test]
    fn stretch_on_grid() {
        let g = grids::grid2d(7, 7, 1);
        let o = build(&g, 0.25);
        check_stretch(&g, &o, 0.25);
    }

    #[test]
    fn stretch_on_weighted_grid() {
        let base = grids::grid2d(6, 6, 1);
        let g = psep_graph::generators::randomize_weights(&base, 1, 9, 5);
        let o = build(&g, 0.25);
        check_stretch(&g, &o, 0.25);
    }

    #[test]
    fn stretch_on_random_tree() {
        let g = trees::random_weighted_tree(50, 7, 3);
        let tree = DecompositionTree::build(&g, &TreeCenterStrategy);
        let o = build_oracle(
            &g,
            &tree,
            OracleParams {
                epsilon: 0.1,
                threads: 1,
            },
        );
        check_stretch(&g, &o, 0.1);
    }

    #[test]
    fn stretch_on_k_tree() {
        let kt = ktree::random_weighted_k_tree(40, 3, 5, 11);
        let o = build(&kt.graph, 0.5);
        check_stretch(&kt.graph, &o, 0.5);
    }

    #[test]
    fn stretch_on_planar() {
        let g = planar_families::triangulated_grid(6, 6, 9);
        let o = build(&g, 0.25);
        check_stretch(&g, &o, 0.25);
    }

    #[test]
    fn stretch_on_mesh_with_apex() {
        let g = special::mesh_with_apex(5);
        let tree = DecompositionTree::build(&g, &IterativeStrategy::default());
        let o = build_oracle(
            &g,
            &tree,
            OracleParams {
                epsilon: 0.25,
                threads: 1,
            },
        );
        check_stretch(&g, &o, 0.25);
    }

    #[test]
    fn coarse_epsilon_still_bounded() {
        // very loose ε keeps the guarantee d ≤ est ≤ (1+ε)d
        let g = grids::grid2d(6, 6, 1);
        let o = build(&g, 4.0);
        check_stretch(&g, &o, 4.0);
        // and uses no more space than a tight ε
        let tight = build(&g, 0.1);
        assert!(o.space_entries() <= tight.space_entries());
    }

    #[test]
    fn disconnected_pairs_return_none() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        let o = build(&g, 0.5);
        assert_eq!(o.query(NodeId(0), NodeId(2)), None);
        assert_eq!(o.query(NodeId(0), NodeId(1)), Some(1));
    }

    #[test]
    fn label_query_is_symmetric() {
        let g = grids::grid2d(5, 5, 1);
        let o = build(&g, 0.25);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(o.query(u, v), o.query(v, u));
            }
        }
    }

    #[test]
    fn explain_agrees_with_query_and_decomposes_the_estimate() {
        let g = grids::grid2d(6, 6, 1);
        let o = build(&g, 0.25);
        let labels = o.to_labels();
        for u in g.nodes() {
            for v in g.nodes() {
                if u == v {
                    continue;
                }
                let est = o.query(u, v).unwrap();
                let (w_est, w) = o.explain(u, v).unwrap();
                assert_eq!(est, w_est);
                assert_eq!(w.dist_u + w.along + w.dist_v, est);
                // the nested-label paths agree with the flat paths
                assert_eq!(query_labels(&labels[u.index()], &labels[v.index()]), est);
                assert_eq!(
                    query_labels_explain(&labels[u.index()], &labels[v.index()]),
                    Some((w_est, w))
                );
                assert_eq!(query_label_refs(o.label(u), o.label(v)), est);
            }
        }
    }

    #[test]
    fn space_accounting() {
        let g = grids::grid2d(6, 6, 1);
        let o = build(&g, 0.25);
        let total: usize = o.to_labels().iter().map(|l| l.size()).sum();
        assert_eq!(o.space_entries(), total);
        assert!(total > 0);
    }

    #[test]
    fn try_query_rejects_out_of_range() {
        let g = grids::grid2d(4, 4, 1);
        let o = build(&g, 0.5);
        assert!(matches!(
            o.try_query(NodeId(0), NodeId(16)),
            Err(Error::NodeOutOfRange { num_nodes: 16, .. })
        ));
        assert!(matches!(
            o.try_query(NodeId(99), NodeId(0)),
            Err(Error::NodeOutOfRange { .. })
        ));
        assert_eq!(
            o.try_query(NodeId(0), NodeId(15)).unwrap(),
            o.query(NodeId(0), NodeId(15))
        );
        assert!(o.try_label(NodeId(16)).is_err());
    }

    #[test]
    fn builder_validates_and_matches_build_oracle() {
        let g = grids::grid2d(5, 5, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let built = OracleBuilder::new().epsilon(0.25).build(&g, &tree).unwrap();
        let direct = build_oracle(
            &g,
            &tree,
            OracleParams {
                epsilon: 0.25,
                threads: 1,
            },
        );
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(built.query(u, v), direct.query(u, v));
            }
        }
        assert!(matches!(
            OracleBuilder::new().epsilon(0.0).build(&g, &tree),
            Err(Error::InvalidEpsilon(_))
        ));
        assert!(matches!(
            OracleBuilder::new().epsilon(f64::NAN).build(&g, &tree),
            Err(Error::InvalidEpsilon(_))
        ));
        // threads(0) means auto and still builds deterministically
        let auto = OracleBuilder::new()
            .epsilon(0.25)
            .threads(0)
            .build(&g, &tree)
            .unwrap();
        assert_eq!(
            auto.query(NodeId(0), NodeId(24)),
            built.query(NodeId(0), NodeId(24))
        );
    }
}
