//! Object location — the paper's title application, as a first-class
//! API: objects are replicated at vertices; a client locates the
//! (approximately) nearest replica using distance labels only.
//!
//! The directory stores, per object, its replica vertices. `locate`
//! evaluates the label-only estimate against each replica and returns
//! the best; because estimates are `(1+ε)`-accurate, the returned
//! replica's true distance is within `(1+ε)` of the true nearest
//! replica's (proof: `d(c, r*) ≤ d(c, r̂) ≤ est(c, r̂) ≤ est(c, r*) ≤
//! (1+ε)·d(c, r*)` where `r̂` is returned and `r*` is truly nearest).

use std::collections::HashMap;

use psep_graph::graph::{NodeId, Weight};

use crate::oracle::DistanceOracle;

/// Identifier of a replicated object.
pub type ObjectId = u64;

/// A replica directory over a distance oracle.
///
/// # Example
///
/// ```
/// use psep_core::{DecompositionTree, AutoStrategy};
/// use psep_graph::generators::grids;
/// use psep_graph::NodeId;
/// use psep_oracle::oracle::{build_oracle, OracleParams};
/// use psep_oracle::directory::ObjectDirectory;
///
/// let g = grids::grid2d(6, 6, 1);
/// let tree = DecompositionTree::build(&g, &AutoStrategy::default());
/// let oracle = build_oracle(&g, &tree, OracleParams::default());
/// let mut dir = ObjectDirectory::new(oracle);
/// dir.register(7, NodeId(0));
/// dir.register(7, NodeId(35));
/// let (replica, est) = dir.locate(NodeId(1), 7).unwrap();
/// assert_eq!(replica, NodeId(0)); // distance 1 vs 9
/// assert!(est >= 1);
/// ```
#[derive(Clone, Debug)]
pub struct ObjectDirectory<'a> {
    oracle: DistanceOracle<'a>,
    placements: HashMap<ObjectId, Vec<NodeId>>,
}

impl<'a> ObjectDirectory<'a> {
    /// Creates an empty directory over `oracle`.
    pub fn new(oracle: DistanceOracle<'a>) -> Self {
        ObjectDirectory {
            oracle,
            placements: HashMap::new(),
        }
    }

    /// The underlying oracle.
    pub fn oracle(&self) -> &DistanceOracle<'a> {
        &self.oracle
    }

    /// Registers a replica of `obj` at `replica`. Idempotent.
    pub fn register(&mut self, obj: ObjectId, replica: NodeId) {
        let reps = self.placements.entry(obj).or_default();
        if !reps.contains(&replica) {
            reps.push(replica);
        }
    }

    /// Removes the replica of `obj` at `replica`; returns whether it
    /// existed. Objects with no replicas left are dropped entirely.
    pub fn unregister(&mut self, obj: ObjectId, replica: NodeId) -> bool {
        let Some(reps) = self.placements.get_mut(&obj) else {
            return false;
        };
        let before = reps.len();
        reps.retain(|&r| r != replica);
        let removed = reps.len() < before;
        if reps.is_empty() {
            self.placements.remove(&obj);
        }
        removed
    }

    /// The replicas of `obj` (empty if unknown).
    pub fn replicas(&self, obj: ObjectId) -> &[NodeId] {
        self.placements.get(&obj).map_or(&[], |v| v.as_slice())
    }

    /// Number of known objects.
    pub fn num_objects(&self) -> usize {
        self.placements.len()
    }

    /// Locates the approximately nearest replica of `obj` from `client`:
    /// the replica with the smallest label-only estimate, and that
    /// estimate. `None` when the object is unknown or no replica is
    /// reachable.
    ///
    /// The returned replica's true distance is within `(1+ε)` of the
    /// true nearest replica's distance.
    pub fn locate(&self, client: NodeId, obj: ObjectId) -> Option<(NodeId, Weight)> {
        let reps = self.placements.get(&obj)?;
        reps.iter()
            .filter_map(|&r| self.oracle.query(client, r).map(|d| (r, d)))
            .min_by_key(|&(r, d)| (d, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_core::strategy::AutoStrategy;
    use psep_core::DecompositionTree;
    use psep_graph::dijkstra::dijkstra;
    use psep_graph::generators::{grids, ktree};
    use psep_graph::Graph;

    fn directory(g: &Graph, eps: f64) -> ObjectDirectory<'_> {
        let tree = DecompositionTree::build(g, &AutoStrategy::default());
        let oracle = crate::oracle::build_oracle(
            g,
            &tree,
            crate::oracle::OracleParams {
                epsilon: eps,
                threads: 1,
            },
        );
        ObjectDirectory::new(oracle)
    }

    #[test]
    fn register_unregister_lifecycle() {
        let g = grids::grid2d(4, 4, 1);
        let mut dir = directory(&g, 0.5);
        assert_eq!(dir.num_objects(), 0);
        dir.register(1, NodeId(0));
        dir.register(1, NodeId(0)); // idempotent
        dir.register(1, NodeId(15));
        assert_eq!(dir.replicas(1), &[NodeId(0), NodeId(15)]);
        assert!(dir.unregister(1, NodeId(0)));
        assert!(!dir.unregister(1, NodeId(0)));
        assert!(dir.unregister(1, NodeId(15)));
        assert_eq!(dir.num_objects(), 0);
        assert!(dir.locate(NodeId(3), 1).is_none());
    }

    #[test]
    fn located_replica_is_near_optimal() {
        let eps = 0.25;
        let kt = ktree::random_weighted_k_tree(120, 3, 7, 5);
        let g = &kt.graph;
        let mut dir = directory(g, eps);
        let replicas = [NodeId(3), NodeId(60), NodeId(117)];
        for &r in &replicas {
            dir.register(42, r);
        }
        for client in g.nodes().step_by(7) {
            let (found, _est) = dir.locate(client, 42).expect("object known");
            let sp = dijkstra(g, &[client]);
            let d_found = sp.dist(found).unwrap();
            let d_best = replicas.iter().map(|&r| sp.dist(r).unwrap()).min().unwrap();
            assert!(
                d_found as f64 <= (1.0 + eps) * d_best as f64 + 1e-9,
                "client {client:?}: found {d_found}, best {d_best}"
            );
        }
    }

    #[test]
    fn unknown_object_is_none() {
        let g = grids::grid2d(3, 3, 1);
        let dir = directory(&g, 0.5);
        assert!(dir.locate(NodeId(0), 99).is_none());
    }

    #[test]
    fn disconnected_replicas_skipped() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        let mut dir = directory(&g, 0.5);
        dir.register(5, NodeId(3));
        // client in the other component cannot reach the only replica
        assert!(dir.locate(NodeId(0), 5).is_none());
        dir.register(5, NodeId(1));
        let (r, d) = dir.locate(NodeId(0), 5).unwrap();
        assert_eq!((r, d), (NodeId(1), 1));
    }
}
