//! Per-vertex portal selection on separator paths.

use psep_core::separator::SepPath;
use psep_graph::graph::{Weight, INFINITY};

use crate::label::PortalEntry;

/// Selects portals of `path` for a vertex `v`, given `dist[x] = d_J(v, x)`
/// for every vertex id `x` (the output of one Dijkstra from `v` in the
/// residual graph `J`; unreachable = [`INFINITY`]).
///
/// Guarantee (by construction): for every path vertex `x` reachable from
/// `v` in `J`,
///
/// ```text
/// min_{p ∈ portals} d_J(v,p) + d_Q(p,x)  ≤  (1+ε) · d_J(v,x).
/// ```
///
/// The greedy scan walks the path once; a vertex becomes a portal exactly
/// when the already-chosen portals fail to cover it. Theory (Thorup,
/// JACM 2004, Lemma 3.4-style) bounds the count by `O(1/ε)`; experiment
/// E3 reports the measured counts.
///
/// Returns an empty vector when `v` reaches no vertex of the path in `J`
/// (the path lies in another residual component — no crossing through it
/// can involve `v`).
pub fn select_portals(dist: &[Weight], path: &SepPath, epsilon: f64) -> Vec<PortalEntry> {
    debug_assert!(epsilon > 0.0, "epsilon must be positive");
    let verts = path.vertices();
    // chosen portals as (path index, distance)
    let mut chosen: Vec<(usize, Weight)> = Vec::new();
    for (x, &vx) in verts.iter().enumerate() {
        let dx = dist[vx.index()];
        if dx == INFINITY {
            continue;
        }
        let covered = chosen.iter().any(|&(p, dp)| {
            let reach = dp.saturating_add(path.along(p, x));
            (reach as f64) <= (1.0 + epsilon) * (dx as f64)
        });
        if !covered {
            chosen.push((x, dx));
        }
    }
    chosen
        .into_iter()
        .map(|(x, d)| PortalEntry {
            pos: path.position(x),
            dist: d,
        })
        .collect()
}

/// Checks the portal cover property for every reachable path vertex —
/// used by tests and by experiment E9.
pub fn check_cover(dist: &[Weight], path: &SepPath, portals: &[PortalEntry], epsilon: f64) -> bool {
    for (x, &vx) in path.vertices().iter().enumerate() {
        let dx = dist[vx.index()];
        if dx == INFINITY {
            continue;
        }
        let pos_x = path.position(x);
        let ok = portals.iter().any(|p| {
            let along = pos_x.abs_diff(p.pos);
            ((p.dist.saturating_add(along)) as f64) <= (1.0 + epsilon) * (dx as f64) + 1e-9
        });
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_core::separator::SepPath;
    use psep_graph::dijkstra::dijkstra;
    use psep_graph::generators::grids;
    use psep_graph::graph::NodeId;

    /// Portals on the middle row of a grid, from each vertex.
    #[test]
    fn cover_property_holds_on_grid() {
        let (r, c) = (7, 7);
        let g = grids::grid2d(r, c, 1);
        let row = grids::grid_row(r, c, r / 2);
        let path = SepPath::new(&g, row);
        for eps in [0.5, 0.25, 0.1] {
            for v in g.nodes() {
                let sp = dijkstra(&g, &[v]);
                let portals = select_portals(sp.dist_raw(), &path, eps);
                assert!(!portals.is_empty());
                assert!(check_cover(sp.dist_raw(), &path, &portals, eps));
            }
        }
    }

    #[test]
    fn on_path_vertex_is_its_own_portal() {
        let g = grids::grid2d(5, 5, 1);
        let row = grids::grid_row(5, 5, 2);
        let v = row[2];
        let path = SepPath::new(&g, row);
        let sp = dijkstra(&g, &[v]);
        let portals = select_portals(sp.dist_raw(), &path, 0.25);
        assert!(portals.iter().any(|p| p.dist == 0));
    }

    #[test]
    fn portal_count_shrinks_with_larger_epsilon() {
        let (r, c) = (9, 31);
        let g = grids::grid2d(r, c, 1);
        let row = grids::grid_row(r, c, r / 2);
        let path = SepPath::new(&g, row);
        let v = NodeId(0);
        let sp = dijkstra(&g, &[v]);
        let loose = select_portals(sp.dist_raw(), &path, 1.0).len();
        let tight = select_portals(sp.dist_raw(), &path, 0.05).len();
        assert!(loose <= tight, "loose {loose} > tight {tight}");
    }

    #[test]
    fn unreachable_path_yields_no_portals() {
        // two disjoint paths in one universe
        let mut g = psep_graph::Graph::new(6);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(3), NodeId(4), 1);
        g.add_edge(NodeId(4), NodeId(5), 1);
        let far = SepPath::new(&g, vec![NodeId(3), NodeId(4), NodeId(5)]);
        let sp = dijkstra(&g, &[NodeId(0)]);
        assert!(select_portals(sp.dist_raw(), &far, 0.5).is_empty());
    }
}
