//! End-to-end daemon tests: spawn a real server on an ephemeral
//! loopback port, drive it through the `psep-rpc/v1` client, and hold
//! answers bit-identical to in-process `LocationService` calls.

use std::sync::Arc;
use std::time::Duration;

use path_separators::api::{ApiErrorKind, Request, Response};
use path_separators::{LocationService, NodeId, ServiceParams};
use psep_serve::{Client, ServeConfig, Server, ShutdownHandle};
use psep_testkit::families::Family;
use psep_testkit::random_pairs;

fn test_config() -> ServeConfig {
    ServeConfig {
        poll_interval: Duration::from_millis(20),
        ..ServeConfig::default()
    }
}

fn spawn_service(
    fam: Family,
    n: usize,
) -> (
    Arc<LocationService<'static>>,
    std::net::SocketAddr,
    ShutdownHandle,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let g = fam.make(n, 7);
    let svc = Arc::new(LocationService::build(&g, ServiceParams::default()));
    let server = Server::bind(Arc::clone(&svc), "127.0.0.1:0", test_config()).unwrap();
    let (addr, handle, runner) = server.spawn();
    (svc, addr, handle, runner)
}

#[test]
fn served_answers_are_bit_identical_across_families() {
    for fam in [
        Family::Grid,
        Family::KTree3,
        Family::Tree,
        Family::Apollonian,
    ] {
        let (svc, addr, handle, runner) = spawn_service(fam, 120);
        let n = svc.num_nodes();
        let pairs = random_pairs(n, 64, 11);
        let mut client = Client::connect(addr).unwrap();

        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
        assert_eq!(
            client.call(&Request::Stats).unwrap(),
            Response::Stats(svc.stats()),
            "{fam:?}: stats over the wire diverge"
        );

        // singles: distance and full route must match in-process calls
        for &(u, v) in pairs.iter().take(12) {
            assert_eq!(
                client.call(&Request::Query { u, v }).unwrap(),
                Response::Distance(svc.query(u, v)),
                "{fam:?}: query({u:?},{v:?})"
            );
            assert_eq!(
                client.call(&Request::Route { u, t: v }).unwrap(),
                Response::Route(svc.route(u, v)),
                "{fam:?}: route({u:?},{v:?})"
            );
            assert_eq!(
                client.call(&Request::QueryPath { u, v }).unwrap(),
                Response::Path(svc.query_path(u, v)),
                "{fam:?}: query_path({u:?},{v:?})"
            );
        }

        // batches fan through the same engines and stay input-ordered
        assert_eq!(
            client
                .call(&Request::QueryMany {
                    pairs: pairs.clone()
                })
                .unwrap(),
            Response::Distances(svc.query_many(&pairs)),
            "{fam:?}: batch queries diverge"
        );
        assert_eq!(
            client
                .call(&Request::RouteMany {
                    pairs: pairs.clone()
                })
                .unwrap(),
            Response::Routes(svc.route_many(&pairs)),
            "{fam:?}: batch routes diverge"
        );
        assert_eq!(
            client
                .call(&Request::QueryPathMany {
                    pairs: pairs.clone()
                })
                .unwrap(),
            Response::Paths(svc.query_path_many(&pairs)),
            "{fam:?}: batch paths diverge"
        );

        handle.shutdown();
        runner.join().unwrap().unwrap();
    }
}

#[test]
fn invalid_requests_get_typed_errors_not_panics() {
    let (svc, addr, handle, runner) = spawn_service(Family::Grid, 100);
    let bad = NodeId(svc.num_nodes() as u32 + 17);
    let mut client = Client::connect(addr).unwrap();
    for req in [
        Request::Query {
            u: NodeId(0),
            v: bad,
        },
        Request::Route {
            u: bad,
            t: NodeId(0),
        },
        Request::QueryMany {
            pairs: vec![(NodeId(0), bad)],
        },
        Request::RouteMany {
            pairs: vec![(bad, bad)],
        },
        Request::QueryPath {
            u: bad,
            v: NodeId(0),
        },
        Request::QueryPathMany {
            pairs: vec![(NodeId(0), bad)],
        },
    ] {
        let Response::Error(e) = client.call(&req).unwrap() else {
            panic!("{req:?} must be rejected");
        };
        assert_eq!(e.kind, ApiErrorKind::NodeOutOfRange, "{req:?}: {e}");
    }
    // the connection survived every rejection
    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
    handle.shutdown();
    runner.join().unwrap().unwrap();
}

#[test]
fn malformed_payloads_are_answered_and_broken_frames_close_only_their_connection() {
    let (_svc, addr, handle, runner) = spawn_service(Family::Grid, 64);

    // a CRC-valid frame whose payload is not a request: typed error
    // back, connection stays usable
    let mut client = Client::connect(addr).unwrap();
    client.send_raw(b"\xffnot a request").unwrap();
    let Some(Response::Error(e)) = client.read().unwrap() else {
        panic!("garbage payload must be answered with a typed error");
    };
    assert_eq!(e.kind, ApiErrorKind::InvalidRequest);
    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);

    // a byte stream that is not a frame at all: the server closes that
    // connection without panicking…
    {
        use std::io::{Read, Write};
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        raw.flush().unwrap();
        let mut buf = [0u8; 64];
        // server answers nothing and hangs up
        assert_eq!(raw.read(&mut buf).unwrap(), 0);
    }

    // …while other connections and new ones keep working
    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
    let mut fresh = Client::connect(addr).unwrap();
    assert_eq!(fresh.call(&Request::Ping).unwrap(), Response::Pong);

    handle.shutdown();
    runner.join().unwrap().unwrap();
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let (svc, addr, handle, runner) = spawn_service(Family::KTree3, 100);
    let pairs = random_pairs(svc.num_nodes(), 40, 3);
    let expected = Response::Distances(svc.query_many(&pairs));
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let pairs = pairs.clone();
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..5 {
                    let got = client
                        .call(&Request::QueryMany {
                            pairs: pairs.clone(),
                        })
                        .unwrap();
                    assert_eq!(&got, expected);
                }
            });
        }
    });
    handle.shutdown();
    runner.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_and_stops_accepting() {
    let (_svc, addr, handle, runner) = spawn_service(Family::Grid, 64);
    let mut client = Client::connect(addr).unwrap();
    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
    handle.shutdown();
    runner.join().unwrap().unwrap();
    // after drain the port is released; a fresh connect must not reach
    // a psep-serve accept loop (connection refused, or reset on call)
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => assert!(c.call(&Request::Ping).is_err()),
    }
}
