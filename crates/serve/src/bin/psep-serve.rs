//! The `psep-serve` daemon: load (or zero-copy map) a `psep-bundle`,
//! serve `psep-rpc/v1` over TCP until SIGINT/SIGTERM, drain, exit.
//!
//! ```text
//! psep-serve build --family grid --n 400 --epsilon 0.25 --out g.bundle
//! psep-serve serve --bundle g.bundle --addr 127.0.0.1:9553
//! psep-serve serve --bundle g.bundle --map --addr 127.0.0.1:0 --metrics metrics.ndjson
//! ```
//!
//! With `--map` the bundle is validated by checksum and served straight
//! out of an aligned buffer (`LocationService::map_bytes`): cold-start
//! is O(checksum) and the label/table arenas are never copied. Without
//! it the bundle is decoded into owned arenas as before.
//!
//! `serve` prints `listening on <addr>` (with the resolved port) on
//! stdout before accepting, so scripts binding port 0 can discover the
//! endpoint. `build` exists so smoke tests and CI can produce a small
//! bundle without a separate tool.

use std::sync::Arc;

use path_separators::{LocationService, ServiceParams};
use psep_serve::{install_signal_handlers, ServeConfig, Server};
use psep_testkit::families::{Family, ALL_FAMILIES};

fn usage() -> ! {
    eprintln!(
        "usage:\n  psep-serve serve --bundle PATH [--map] [--addr HOST:PORT] [--max-frame BYTES] [--metrics PATH]\n  psep-serve build --family NAME --n N [--epsilon EPS] [--threads T] [--seed S] --out PATH\n\nfamilies: {}",
        ALL_FAMILIES
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2)
}

fn parse_family(name: &str) -> Option<Family> {
    ALL_FAMILIES.iter().copied().find(|f| f.name() == name)
}

struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Self {
        let mut out = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                eprintln!("unexpected argument `{a}`");
                usage()
            };
            // a flag followed by another flag (or nothing) is boolean
            match it.clone().next() {
                Some(v) if !v.starts_with("--") => {
                    it.next();
                    out.push((key.to_string(), v.clone()));
                }
                _ => out.push((key.to_string(), "true".to_string())),
            }
        }
        Flags(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--{key}: cannot parse `{v}`");
                usage()
            }),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage()
    };
    match cmd.as_str() {
        "serve" => serve(Flags::parse(rest)),
        "build" => build(Flags::parse(rest)),
        _ => usage(),
    }
}

fn build(flags: Flags) {
    let Some(family) = flags.get("family").and_then(parse_family) else {
        eprintln!("--family: unknown or missing family");
        usage()
    };
    let Some(out) = flags.get("out") else {
        eprintln!("--out is required");
        usage()
    };
    let n: usize = flags.num("n", 400);
    let seed: u64 = flags.num("seed", 1);
    let params = ServiceParams {
        epsilon: flags.num("epsilon", 0.25),
        threads: flags.num("threads", 1),
    };
    let g = family.make(n, seed);
    let svc = LocationService::build(&g, params);
    if let Err(e) = svc.save_to_path(out) {
        eprintln!("writing {out}: {e}");
        std::process::exit(1);
    }
    println!(
        "wrote {out}: {} vertices, {} edges, eps={}",
        svc.num_nodes(),
        g.num_edges(),
        svc.epsilon()
    );
}

fn serve(flags: Flags) {
    let Some(bundle) = flags.get("bundle") else {
        eprintln!("--bundle is required");
        usage()
    };
    let addr = flags.get("addr").unwrap_or("127.0.0.1:9553").to_string();
    let cfg = ServeConfig {
        max_frame: flags.num("max-frame", ServeConfig::default().max_frame),
        ..ServeConfig::default()
    };
    let metrics = flags.get("metrics").map(str::to_string);

    let map = flags.get("map").is_some();

    psep_obs::set_enabled(true);
    let svc = if map {
        // leak the aligned buffer so worker threads can borrow it for
        // the life of the process: the whole point is to serve in place
        let buf: &'static path_separators::core::wire::AlignedBytes =
            match path_separators::core::wire::AlignedBytes::read_file(std::path::Path::new(bundle))
            {
                Ok(b) => Box::leak(Box::new(b)),
                Err(e) => {
                    eprintln!("reading {bundle}: {e}");
                    std::process::exit(1);
                }
            };
        match LocationService::map_bytes(buf) {
            Ok(svc) => {
                psep_obs::counter!("serve.mapped").incr();
                Arc::new(svc)
            }
            Err(e) => {
                eprintln!("mapping {bundle}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        match LocationService::load_from_path(bundle) {
            Ok(svc) => Arc::new(svc),
            Err(e) => {
                eprintln!("loading {bundle}: {e}");
                std::process::exit(1);
            }
        }
    };
    let server = match Server::bind(Arc::clone(&svc), addr.as_str(), cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("binding {addr}: {e}");
            std::process::exit(1);
        }
    };
    install_signal_handlers();
    if map {
        // don't touch the graph section here: cold-start stays
        // O(checksum), the first route decodes it on demand
        println!(
            "psep-serve: {} vertices, eps={}, {} storage (mapped)",
            svc.num_nodes(),
            svc.epsilon(),
            if svc.is_borrowed() {
                "borrowed"
            } else {
                "owned"
            }
        );
    } else {
        println!(
            "psep-serve: {} vertices, {} edges, eps={}",
            svc.num_nodes(),
            svc.graph().num_edges(),
            svc.epsilon()
        );
    }
    println!("listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("accept loop failed: {e}");
        std::process::exit(1);
    }
    eprintln!("psep-serve: drained, shutting down");
    if let Some(path) = metrics {
        let snapshot = psep_obs::snapshot();
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                if let Err(e) = snapshot.write_ndjson(&mut f, Some("psep-serve")) {
                    eprintln!("writing {path}: {e}");
                }
            }
            Err(e) => eprintln!("creating {path}: {e}"),
        }
    }
}
