#![warn(missing_docs)]
//! `psep-serve`: the network daemon that turns a
//! [`LocationService`] into a live system.
//!
//! The server speaks `psep-rpc/v1` ([`path_separators::rpc`]) over
//! plain TCP: one worker thread per connection, all sharing one
//! `Arc<LocationService>` (queries only borrow the arenas, so there is
//! no lock anywhere on the request path). The protocol surface is
//! exactly the typed [`Request`]/[`Response`] vocabulary of
//! [`path_separators::api`] — the daemon itself is a thin loop around
//! [`LocationService::handle`], so answers served over the wire are
//! bit-identical to in-process calls.
//!
//! Operational behaviour:
//!
//! * **Graceful shutdown** — [`ShutdownHandle::shutdown`] (or
//!   SIGINT/SIGTERM after [`install_signal_handlers`]) stops the accept
//!   loop; connection workers finish the request in flight, then close.
//!   [`Server::run`] returns only after every worker has drained.
//! * **Malformed input never kills the daemon** — a frame whose
//!   checksum verifies but whose payload doesn't decode is answered
//!   with a typed [`Response::Error`] and the connection stays open; a
//!   broken frame (bad magic, length overflow, CRC mismatch) poisons
//!   only that connection, which is closed.
//! * **Observability** — `serve.*` counters (connections, requests per
//!   op, decode/frame errors) and per-op `serve.<op>.latency_ns`
//!   histograms with p50–p99, in the same `psep-obs` namespace the rest
//!   of the stack reports under.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use path_separators::api::{ApiError, Request, Response};
use path_separators::rpc::{self, RpcError, DEFAULT_MAX_FRAME};
use path_separators::LocationService;

/// Tunables for a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Per-frame payload cap (both directions).
    pub max_frame: usize,
    /// How often idle waits wake up to poll the shutdown flag — the
    /// accept loop's sleep and each connection's read timeout.
    pub poll_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_frame: DEFAULT_MAX_FRAME,
            poll_interval: Duration::from_millis(100),
        }
    }
}

/// Flips the shared shutdown flag; cloneable across threads.
#[derive(Clone, Debug)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Requests a graceful shutdown: stop accepting, drain in-flight
    /// connections, return from [`Server::run`].
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested (by this handle or a
    /// signal).
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst) || signals::signaled()
    }
}

/// A bound-but-not-yet-running `psep-rpc/v1` server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    svc: Arc<LocationService<'static>>,
    cfg: ServeConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (port 0 picks an ephemeral port) for `svc`.
    pub fn bind<A: ToSocketAddrs>(
        svc: Arc<LocationService<'static>>,
        addr: A,
        cfg: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            svc,
            cfg,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop this server from any thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(Arc::clone(&self.shutdown))
    }

    /// Runs the accept loop on the calling thread until shutdown is
    /// requested, then drains every in-flight connection before
    /// returning.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let shutdown = ShutdownHandle(Arc::clone(&self.shutdown));
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !shutdown.is_shutdown() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    psep_obs::counter!("serve.connections").incr();
                    let svc = Arc::clone(&self.svc);
                    let cfg = self.cfg;
                    let handle = shutdown.clone();
                    workers.push(
                        std::thread::Builder::new()
                            .name("psep-serve-conn".into())
                            .spawn(move || serve_connection(stream, &svc, &cfg, &handle))?,
                    );
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(self.cfg.poll_interval.min(Duration::from_millis(50)));
                    // reap workers whose connections have closed
                    workers.retain(|w| !w.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: the listener stops accepting here; workers notice the
        // flag at their next idle poll and exit after the request in
        // flight (if any) has been answered.
        drop(self.listener);
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }

    /// Spawns [`Server::run`] on a background thread, returning the
    /// bound address, a shutdown handle, and the runner's join handle.
    pub fn spawn(
        self,
    ) -> (
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<std::io::Result<()>>,
    ) {
        let addr = self.local_addr();
        let handle = self.shutdown_handle();
        let runner = std::thread::Builder::new()
            .name("psep-serve-accept".into())
            .spawn(move || self.run())
            .expect("spawning the accept thread");
        (addr, handle, runner)
    }
}

/// One connection's request/response loop. Returns (closing the
/// connection) on client hangup, framing errors, write failures, or
/// shutdown; payload-level decode errors are answered and survived.
fn serve_connection(
    stream: TcpStream,
    svc: &LocationService<'static>,
    cfg: &ServeConfig,
    shutdown: &ShutdownHandle,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.poll_interval));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match rpc::read_frame(&mut reader, cfg.max_frame) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // client closed between frames
            Err(e) if e.is_idle_timeout() => {
                if shutdown.is_shutdown() {
                    return;
                }
                continue;
            }
            Err(_) => {
                // bad magic / oversized frame / CRC mismatch / socket
                // error: the stream can no longer be trusted
                psep_obs::counter!("serve.frame_errors").incr();
                return;
            }
        };
        let resp = match rpc::decode_request(&payload) {
            Ok(req) => {
                psep_obs::counter!("serve.requests").incr();
                let t0 = psep_obs::now_if_enabled();
                let resp = svc.handle(&req);
                if let Some(t0) = t0 {
                    // static names per op: the macros cache the registry
                    // lookup per call site, keeping the hot path free of
                    // the registry mutex
                    match req {
                        Request::Ping => {
                            psep_obs::counter!("serve.requests.ping").incr();
                            psep_obs::histogram!("serve.ping.latency_ns").record_elapsed(t0);
                        }
                        Request::Stats => {
                            psep_obs::counter!("serve.requests.stats").incr();
                            psep_obs::histogram!("serve.stats.latency_ns").record_elapsed(t0);
                        }
                        Request::Query { .. } => {
                            psep_obs::counter!("serve.requests.query").incr();
                            psep_obs::histogram!("serve.query.latency_ns").record_elapsed(t0);
                        }
                        Request::QueryMany { .. } => {
                            psep_obs::counter!("serve.requests.query_many").incr();
                            psep_obs::histogram!("serve.query_many.latency_ns").record_elapsed(t0);
                            psep_obs::histogram!("serve.batch.pairs")
                                .record(req.pair_count() as u64);
                        }
                        Request::Route { .. } => {
                            psep_obs::counter!("serve.requests.route").incr();
                            psep_obs::histogram!("serve.route.latency_ns").record_elapsed(t0);
                        }
                        Request::RouteMany { .. } => {
                            psep_obs::counter!("serve.requests.route_many").incr();
                            psep_obs::histogram!("serve.route_many.latency_ns").record_elapsed(t0);
                            psep_obs::histogram!("serve.batch.pairs")
                                .record(req.pair_count() as u64);
                        }
                        Request::QueryPath { .. } => {
                            psep_obs::counter!("serve.requests.query_path").incr();
                            psep_obs::histogram!("serve.query_path.latency_ns").record_elapsed(t0);
                        }
                        Request::QueryPathMany { .. } => {
                            psep_obs::counter!("serve.requests.query_path_many").incr();
                            psep_obs::histogram!("serve.query_path_many.latency_ns")
                                .record_elapsed(t0);
                            psep_obs::histogram!("serve.batch.pairs")
                                .record(req.pair_count() as u64);
                        }
                    }
                }
                if resp.is_error() {
                    psep_obs::counter!("serve.request_errors").incr();
                }
                resp
            }
            Err(e) => {
                // the frame was sound (CRC verified) but the payload is
                // not a request — answer typed and keep the connection
                psep_obs::counter!("serve.decode_errors").incr();
                Response::Error(ApiError::invalid(e.to_string()))
            }
        };
        if rpc::write_response(&mut writer, &resp).is_err() || writer.flush().is_err() {
            return;
        }
        if shutdown.is_shutdown() {
            return; // drained: current request answered, now close
        }
    }
}

/// A blocking `psep-rpc/v1` client: one request, one response, in
/// order, over a single connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: usize,
}

impl Client {
    /// Connects with the default frame cap.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::connect_with(addr, DEFAULT_MAX_FRAME)
    }

    /// Connects with an explicit frame cap.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, max_frame: usize) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            max_frame,
        })
    }

    /// Sends `req` and blocks for the server's response.
    pub fn call(&mut self, req: &Request) -> Result<Response, RpcError> {
        rpc::write_request(&mut self.writer, req)?;
        self.writer.flush().map_err(RpcError::Io)?;
        match rpc::read_response(&mut self.reader, self.max_frame)? {
            Some(resp) => Ok(resp),
            // the server hung up instead of answering
            None => Err(psep_core_truncated()),
        }
    }

    /// Raw frame write, for driving the protocol off the happy path in
    /// tests and fuzzing (e.g. sending deliberately corrupt payloads).
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<(), RpcError> {
        rpc::write_frame(&mut self.writer, payload)?;
        self.writer.flush().map_err(RpcError::Io)?;
        Ok(())
    }

    /// Reads one framed response after [`Client::send_raw`].
    pub fn read(&mut self) -> Result<Option<Response>, RpcError> {
        rpc::read_response(&mut self.reader, self.max_frame)
    }
}

fn psep_core_truncated() -> RpcError {
    RpcError::Wire(path_separators::core::wire::WireError::Truncated)
}

/// Installs SIGINT and SIGTERM handlers that request a graceful
/// shutdown (observed by every [`ShutdownHandle`]). No-op off Unix.
pub fn install_signal_handlers() {
    signals::install();
}

mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALED: AtomicBool = AtomicBool::new(false);

    pub fn signaled() -> bool {
        SIGNALED.load(Ordering::SeqCst)
    }

    extern "C" fn on_signal(_sig: i32) {
        // an atomic store is async-signal-safe
        SIGNALED.store(true, Ordering::SeqCst);
    }

    #[cfg(unix)]
    pub fn install() {
        // std links libc on unix; declare the one symbol we need rather
        // than pulling in a dependency the container doesn't have.
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        unsafe {
            signal(2, on_signal); // SIGINT
            signal(15, on_signal); // SIGTERM
        }
    }

    #[cfg(not(unix))]
    pub fn install() {
        let _ = on_signal; // keep the handler referenced
    }
}
