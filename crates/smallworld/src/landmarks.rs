//! Claim 1 landmark selection.
//!
//! Given a vertex `v`, a separator path `Q` (a shortest path of the
//! residual graph `J`), and `d_J(v, ·)`, the landmark set `L(Q)` is built
//! from the closest path vertex `x_c` (`d = d_J(v, x_c)`):
//!
//! * **linear scales**: for `i ∈ {0..10}`, the first vertex at
//!   along-path distance `≥ (i/2)·d` from `x_c`, in both directions;
//! * **geometric scales**: for `i ∈ {0..⌈log Δ⌉}`, the first vertex at
//!   along-path distance `≥ 2^i·d`, in both directions.
//!
//! Claim 1: for every `x ∈ Q` there is `ℓ ∈ L` with
//! `d_Q(ℓ, x) ≤ ¾ · d_J(v, x)`. (On weighted paths the "first vertex
//! past a threshold" can overshoot; we additionally include the last
//! vertex *before* each geometric threshold, which restores the bound on
//! weighted inputs and only doubles the constant.)

use psep_core::separator::SepPath;
use psep_graph::graph::{Weight, INFINITY};

/// Selects the Claim 1 landmark set: path indices into `path`, sorted
/// and deduplicated. `dist[x]` must hold `d_J(v, x)` per vertex id.
/// Returns an empty vector when `v` reaches no path vertex in `J`.
pub fn select_landmarks(dist: &[Weight], path: &SepPath, log_delta: u32) -> Vec<usize> {
    let verts = path.vertices();
    // closest path vertex x_c (smallest index on ties)
    let mut xc: Option<(usize, Weight)> = None;
    for (i, &v) in verts.iter().enumerate() {
        let d = dist[v.index()];
        if d == INFINITY {
            continue;
        }
        if xc.is_none_or(|(_, best)| d < best) {
            xc = Some((i, d));
        }
    }
    let Some((xc, d)) = xc else {
        return Vec::new();
    };
    // Threshold base: when v lies on Q, d = 0 and the paper's thresholds
    // all degenerate to x_c; since min distance is 1, max(d, 1) restores
    // Claim 1 for every other path vertex.
    let d = d.max(1);
    let mut out: Vec<usize> = vec![xc];
    let pos_c = path.position(xc);

    // thresholds (along-path distances from x_c), in units that avoid
    // fractions: compare 2·offset ≥ i·d for the linear scales.
    let mut add_first_at_or_past = |threshold2: u128| {
        // forward direction: positions ≥ pos_c
        for i in xc..verts.len() {
            let off2 = 2 * (path.position(i) - pos_c) as u128;
            if off2 >= threshold2 {
                out.push(i);
                break;
            }
        }
        // backward direction
        for i in (0..=xc).rev() {
            let off2 = 2 * (pos_c - path.position(i)) as u128;
            if off2 >= threshold2 {
                out.push(i);
                break;
            }
        }
    };
    for i in 0u128..=10 {
        add_first_at_or_past(i * d as u128);
    }
    for i in 0..=log_delta {
        let t2 = 2u128 * (1u128 << i.min(63)) * d as u128;
        add_first_at_or_past(t2);
    }
    // weighted-path safety: the last vertex *before* each geometric
    // threshold in each direction
    for i in 0..=log_delta {
        let t = (1u128 << i.min(63)) * d as u128;
        let mut last_fwd: Option<usize> = None;
        for j in xc..verts.len() {
            if ((path.position(j) - pos_c) as u128) <= t {
                last_fwd = Some(j);
            } else {
                break;
            }
        }
        if let Some(j) = last_fwd {
            out.push(j);
        }
        let mut last_bwd: Option<usize> = None;
        for j in (0..=xc).rev() {
            if ((pos_c - path.position(j)) as u128) <= t {
                last_bwd = Some(j);
            } else {
                break;
            }
        }
        if let Some(j) = last_bwd {
            out.push(j);
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Checks Claim 1 for a concrete `(v, Q)` pair: every reachable path
/// vertex `x` has a landmark within along-path distance
/// `¾ · d_J(v, x)`.
pub fn claim1_holds(dist: &[Weight], path: &SepPath, landmarks: &[usize]) -> bool {
    let verts = path.vertices();
    for (x, &vx) in verts.iter().enumerate() {
        let dx = dist[vx.index()];
        if dx == INFINITY {
            continue;
        }
        let ok = landmarks.iter().any(|&l| {
            let along = path.along(l, x);
            4 * along as u128 <= 3 * dx as u128
        });
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_core::separator::SepPath;
    use psep_graph::dijkstra::dijkstra;
    use psep_graph::generators::{grids, randomize_weights};
    use psep_graph::metrics::aspect_ratio_estimate;

    #[test]
    fn claim1_on_unit_grid() {
        let (r, c) = (9, 21);
        let g = grids::grid2d(r, c, 1);
        let row = grids::grid_row(r, c, r / 2);
        let path = SepPath::new(&g, row);
        let log_delta = 6;
        for v in g.nodes() {
            let sp = dijkstra(&g, &[v]);
            let lm = select_landmarks(sp.dist_raw(), &path, log_delta);
            assert!(!lm.is_empty());
            assert!(
                claim1_holds(sp.dist_raw(), &path, &lm),
                "claim 1 fails for {v:?}"
            );
        }
    }

    #[test]
    fn claim1_on_weighted_grid() {
        let base = grids::grid2d(7, 15, 1);
        let g = randomize_weights(&base, 1, 13, 3);
        // the middle row of the weighted grid need not be a shortest
        // path, but Claim 1 only needs along-path coverage; use a real
        // shortest path as Q instead:
        let sp0 = dijkstra(&g, &[psep_graph::NodeId(0)]);
        let far = g.nodes().max_by_key(|&v| sp0.dist(v).unwrap()).unwrap();
        let q = sp0.path_to(far).unwrap();
        let path = SepPath::new(&g, q);
        let log_delta = (aspect_ratio_estimate(&g).unwrap() as f64).log2().ceil() as u32 + 1;
        for v in g.nodes() {
            let sp = dijkstra(&g, &[v]);
            let lm = select_landmarks(sp.dist_raw(), &path, log_delta);
            assert!(
                claim1_holds(sp.dist_raw(), &path, &lm),
                "claim 1 fails for {v:?}"
            );
        }
    }

    #[test]
    fn on_path_vertex_gets_itself() {
        let g = grids::grid2d(5, 9, 1);
        let row = grids::grid_row(5, 9, 2);
        let v = row[4];
        let path = SepPath::new(&g, row);
        let sp = dijkstra(&g, &[v]);
        let lm = select_landmarks(sp.dist_raw(), &path, 5);
        // d = 0, so every threshold is 0 and x_c = v itself is in L
        assert!(lm.contains(&4));
    }

    #[test]
    fn landmark_count_is_logarithmic() {
        let (r, c) = (5, 257);
        let g = grids::grid2d(r, c, 1);
        let row = grids::grid_row(r, c, r / 2);
        let path = SepPath::new(&g, row);
        let log_delta = 9;
        let sp = dijkstra(&g, &[psep_graph::NodeId(0)]);
        let lm = select_landmarks(sp.dist_raw(), &path, log_delta);
        // O(log Δ + 11) per direction; generous bound
        assert!(
            lm.len() <= 4 * (log_delta as usize + 12),
            "got {}",
            lm.len()
        );
    }

    #[test]
    fn unreachable_path_no_landmarks() {
        let mut g = psep_graph::Graph::new(4);
        g.add_edge(psep_graph::NodeId(0), psep_graph::NodeId(1), 1);
        g.add_edge(psep_graph::NodeId(2), psep_graph::NodeId(3), 1);
        let path = SepPath::new(&g, vec![psep_graph::NodeId(2), psep_graph::NodeId(3)]);
        let sp = dijkstra(&g, &[psep_graph::NodeId(0)]);
        assert!(select_landmarks(sp.dist_raw(), &path, 4).is_empty());
    }
}
