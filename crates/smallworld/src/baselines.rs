//! Baseline augmentation distributions: Kleinberg's inverse-square grid
//! distribution (the model Theorem 3 generalizes) and uniform-random
//! contacts (the "wrong" distribution, which should perform poorly).

use psep_graph::graph::NodeId;
use rand::Rng;

use crate::sim::ContactRule;

/// Kleinberg's harmonic (inverse-square for 2D) distribution on a
/// `rows × cols` grid with row-major ids: the contact of `v` is `u` with
/// probability proportional to `manhattan(v, u)^{-2}`.
#[derive(Clone, Debug)]
pub struct KleinbergGrid {
    rows: usize,
    cols: usize,
}

impl KleinbergGrid {
    /// Creates the distribution for a `rows × cols` grid.
    pub fn new(rows: usize, cols: usize) -> Self {
        KleinbergGrid { rows, cols }
    }

    fn coords(&self, v: NodeId) -> (usize, usize) {
        (v.index() / self.cols, v.index() % self.cols)
    }
}

impl ContactRule for KleinbergGrid {
    fn sample_contact(&self, v: NodeId, rng: &mut dyn rand::RngCore) -> Option<NodeId> {
        let (vr, vc) = self.coords(v);
        // rejection-free sampling by cumulative weights (n is bench-scale)
        let n = self.rows * self.cols;
        let mut weights = Vec::with_capacity(n - 1);
        let mut total = 0.0f64;
        for u in 0..n {
            if u == v.index() {
                continue;
            }
            let (ur, uc) = (u / self.cols, u % self.cols);
            let d = vr.abs_diff(ur) + vc.abs_diff(uc);
            let w = 1.0 / ((d * d) as f64);
            total += w;
            weights.push((u, total));
        }
        let x = rng.gen_range(0.0..total);
        let idx = weights.partition_point(|&(_, acc)| acc < x);
        weights.get(idx).map(|&(u, _)| NodeId::from_index(u))
    }
}

/// Uniform-random contacts: every other vertex equally likely. Kleinberg
/// proved greedy routing needs `Ω(n^{2/3})` expected hops on the grid
/// under this distribution — the negative control for experiment E4.
#[derive(Clone, Copy, Debug)]
pub struct UniformAugmentation {
    n: usize,
}

impl UniformAugmentation {
    /// Creates the uniform distribution over `n` vertices.
    pub fn new(n: usize) -> Self {
        UniformAugmentation { n }
    }
}

impl ContactRule for UniformAugmentation {
    fn sample_contact(&self, v: NodeId, rng: &mut dyn rand::RngCore) -> Option<NodeId> {
        if self.n <= 1 {
            return None;
        }
        let mut r = rand::Rng::gen_range(rng, 0..self.n - 1);
        if r >= v.index() {
            r += 1;
        }
        Some(NodeId::from_index(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::GreedySim;
    use psep_graph::generators::grids;
    use rand::SeedableRng;

    #[test]
    fn kleinberg_contacts_are_biased_to_nearby() {
        let kb = KleinbergGrid::new(9, 9);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let v = NodeId(40); // center
        let mut near = 0;
        let trials = 400;
        for _ in 0..trials {
            let c = kb.sample_contact(v, &mut rng).unwrap();
            let (vr, vc) = (4usize, 4usize);
            let (cr, cc) = (c.index() / 9, c.index() % 9);
            if vr.abs_diff(cr) + vc.abs_diff(cc) <= 2 {
                near += 1;
            }
        }
        // inverse-square strongly favors close contacts
        assert!(near * 3 > trials, "only {near}/{trials} near contacts");
    }

    #[test]
    fn uniform_never_self() {
        let u = UniformAugmentation::new(10);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        for v in 0..10u32 {
            for _ in 0..50 {
                let c = u.sample_contact(NodeId(v), &mut rng).unwrap();
                assert_ne!(c, NodeId(v));
            }
        }
    }

    #[test]
    fn augmentations_beat_plain_greedy() {
        // At n = 196 the Kleinberg-vs-uniform asymptotic gap
        // (polylog vs Ω(n^{2/3})) is not yet visible — experiment E4
        // measures it at scale. Here both must beat unaugmented greedy.
        struct NoContacts;
        impl ContactRule for NoContacts {
            fn sample_contact(&self, _: NodeId, _: &mut dyn rand::RngCore) -> Option<NodeId> {
                None
            }
        }
        let (r, c) = (14, 14);
        let g = grids::grid2d(r, c, 1);
        let kb = KleinbergGrid::new(r, c);
        let un = UniformAugmentation::new(r * c);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let plain = GreedySim::new(&g, &NoContacts).run(300, &mut rng);
        let kb_stats = GreedySim::new(&g, &kb).run(300, &mut rng);
        let un_stats = GreedySim::new(&g, &un).run(300, &mut rng);
        assert!(kb_stats.mean_hops < plain.mean_hops);
        assert!(un_stats.mean_hops < plain.mean_hops);
    }
}
