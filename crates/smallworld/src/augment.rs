//! The paper's augmentation distribution (Definitions 3–4) over a
//! decomposition tree.

use psep_core::decomposition::DecompositionTree;
use psep_core::exec::{ShardObs, ShardedRunner};
use psep_graph::dijkstra::DijkstraScratch;
use psep_graph::graph::{Graph, NodeId};

use crate::landmarks::select_landmarks;

const AUGMENT_OBS: ShardObs = ShardObs {
    prefix: "smallworld.augment",
    items: "sources",
    units: "landmarks",
};

/// One level of a vertex's distribution: the paths of `S(H_τ(v))`, each
/// with the vertex's Claim 1 landmark list (empty if the path is
/// unreachable in its residual graph).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelChoices {
    /// Per path of the level's separator: the landmark vertex ids.
    pub paths: Vec<Vec<NodeId>>,
}

/// The augmentation distribution `𝒟`: for each vertex, per chain level,
/// per separator path, the Claim 1 landmark set.
///
/// Sampling (`sample_contact`) follows the paper exactly: uniform level
/// `τ`, uniform path `Q` of `S(H_τ(v))`, uniform landmark of `L(Q)`;
/// when the chosen path has no landmarks (unreachable in `J`), no
/// long-range edge is added for that trial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Augmentation {
    per_vertex: Vec<Vec<LevelChoices>>,
}

/// Builds the distribution for `g` over `tree`. `log_delta` should be
/// `⌈log₂ Δ⌉` for the aspect ratio `Δ` of `g` (the number of geometric
/// landmark scales).
///
/// Node-major construction: one Dijkstra per (alive vertex, node, group),
/// exactly like label construction. Equivalent to
/// [`build_augmentation_with`] at one thread.
///
/// # Example
///
/// ```
/// use psep_core::{DecompositionTree, AutoStrategy};
/// use psep_graph::generators::grids;
/// use psep_graph::NodeId;
/// use psep_smallworld::build_augmentation;
/// use rand::SeedableRng;
///
/// let g = grids::grid2d(6, 6, 1);
/// let tree = DecompositionTree::build(&g, &AutoStrategy::default());
/// let aug = build_augmentation(&g, &tree, 4);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// // some sampled contact exists for every vertex
/// assert!((0..50).any(|_| aug.sample_contact(NodeId(0), &mut rng).is_some()));
/// ```
pub fn build_augmentation(g: &Graph, tree: &DecompositionTree, log_delta: u32) -> Augmentation {
    build_augmentation_with(g, tree, log_delta, 1)
}

/// [`build_augmentation`] with an explicit worker count (`0` = all
/// available threads, honouring `PSEP_THREADS`).
///
/// The per-source Dijkstra runs are sharded over a
/// [`ShardedRunner`] and merged in input order, so the resulting
/// distribution is **identical** at every thread count (and to the
/// sequential build).
pub fn build_augmentation_with(
    g: &Graph,
    tree: &DecompositionTree,
    log_delta: u32,
    threads: usize,
) -> Augmentation {
    let n = g.num_nodes();
    // chain level of each node per vertex: level index within the chain
    // is the node's depth (chains follow parent pointers), so per-vertex
    // storage is indexed by depth.
    let mut per_vertex: Vec<Vec<LevelChoices>> = (0..n)
        .map(|i| {
            let v = NodeId::from_index(i);
            let chain = tree.chain_of(v);
            chain
                .iter()
                .map(|&node_idx| LevelChoices {
                    paths: tree
                        .node(node_idx)
                        .separator
                        .groups
                        .iter()
                        .flat_map(|gr| gr.paths.iter())
                        .map(|_| Vec::new())
                        .collect(),
                })
                .collect()
        })
        .collect();

    let runner = ShardedRunner::new(threads);
    let mut scratches: Vec<DijkstraScratch> = (0..runner.threads())
        .map(|_| DijkstraScratch::new(n))
        .collect();
    for (h, node) in tree.nodes().iter().enumerate() {
        // flattened path index offset per group
        let mut flat_offset: Vec<usize> = Vec::with_capacity(node.separator.num_groups());
        let mut acc = 0;
        for gr in &node.separator.groups {
            flat_offset.push(acc);
            acc += gr.paths.len();
        }
        #[allow(clippy::needless_range_loop)] // gi also names the group in emitted entries
        for gi in 0..node.separator.num_groups() {
            let paths = &node.separator.groups[gi].paths;
            if paths.is_empty() {
                continue;
            }
            let mask = tree.residual_mask(n, h, gi);
            let view = psep_graph::SubgraphView::new(g, &mask);
            let view_ref = &view;
            let alive: Vec<NodeId> = mask.iter().collect();
            let (results, _) =
                runner.run(&alive, Some(&AUGMENT_OBS), &mut scratches, |scratch, &v| {
                    scratch.run(view_ref, &[v]);
                    let mut per_path: Vec<Vec<NodeId>> = Vec::with_capacity(paths.len());
                    let mut found = 0u64;
                    for q in paths {
                        let lm = select_landmarks(scratch.dist_raw(), q, log_delta);
                        found += lm.len() as u64;
                        per_path.push(lm.iter().map(|&i| q.vertices()[i]).collect());
                    }
                    (per_path, found)
                });
            let depth = node.depth;
            for (&v, per_path) in alive.iter().zip(results) {
                for (pi, ids) in per_path.into_iter().enumerate() {
                    if !ids.is_empty() {
                        per_vertex[v.index()][depth].paths[flat_offset[gi] + pi] = ids;
                    }
                }
            }
        }
    }
    Augmentation { per_vertex }
}

impl Augmentation {
    /// Samples `v`'s long-range contact: uniform level, uniform path,
    /// uniform landmark. `None` when the sampled path has no landmarks
    /// for `v` or `v`'s chain is empty.
    pub fn sample_contact<R: rand::Rng>(&self, v: NodeId, rng: &mut R) -> Option<NodeId> {
        let levels = &self.per_vertex[v.index()];
        if levels.is_empty() {
            return None;
        }
        let level = &levels[rng.gen_range(0..levels.len())];
        if level.paths.is_empty() {
            return None;
        }
        let lm = &level.paths[rng.gen_range(0..level.paths.len())];
        if lm.is_empty() {
            return None;
        }
        Some(lm[rng.gen_range(0..lm.len())])
    }

    /// Mean number of stored landmark entries per vertex (the support
    /// size of `𝒟(v, ·)` — `O(k log n log Δ)`).
    pub fn mean_support(&self) -> f64 {
        let total: usize = self
            .per_vertex
            .iter()
            .map(|lvls| {
                lvls.iter()
                    .map(|l| l.paths.iter().map(|p| p.len()).sum::<usize>())
                    .sum::<usize>()
            })
            .sum();
        total as f64 / self.per_vertex.len().max(1) as f64
    }

    /// The landmark lists of `v` at `level` (for tests).
    pub fn level_choices(&self, v: NodeId, level: usize) -> Option<&LevelChoices> {
        self.per_vertex[v.index()].get(level)
    }

    /// Number of chain levels of `v`.
    pub fn num_levels(&self, v: NodeId) -> usize {
        self.per_vertex[v.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_core::strategy::AutoStrategy;
    use psep_core::DecompositionTree;
    use psep_graph::generators::grids;
    use rand::SeedableRng;

    #[test]
    fn every_vertex_can_sample() {
        let g = grids::grid2d(8, 8, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let aug = build_augmentation(&g, &tree, 5);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        for v in g.nodes() {
            assert!(aug.num_levels(v) >= 1);
            // some samples may be None (unreachable paths), but over many
            // trials at least one contact must appear
            let got = (0..50).any(|_| aug.sample_contact(v, &mut rng).is_some());
            assert!(got, "{v:?} never sampled a contact");
        }
    }

    #[test]
    fn contacts_are_real_vertices() {
        let g = grids::grid2d(6, 6, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let aug = build_augmentation(&g, &tree, 5);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        for v in g.nodes() {
            for _ in 0..20 {
                if let Some(c) = aug.sample_contact(v, &mut rng) {
                    assert!(c.index() < g.num_nodes());
                }
            }
        }
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let g = grids::grid2d(8, 8, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let base = build_augmentation(&g, &tree, 5);
        for threads in [2, 4] {
            let par = build_augmentation_with(&g, &tree, 5, threads);
            assert_eq!(base, par, "threads={threads} diverged");
        }
    }

    #[test]
    fn support_is_moderate() {
        let g = grids::grid2d(10, 10, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let aug = build_augmentation(&g, &tree, 7);
        let support = aug.mean_support();
        assert!(support > 0.0);
        // O(k · log n · log Δ) with small constants; generous cap
        assert!(support < 2000.0, "support {support}");
    }
}
