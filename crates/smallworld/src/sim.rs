//! Greedy-routing simulation over augmented graphs.

use std::collections::HashMap;

use psep_core::exec::{ShardObs, ShardedRunner};
use psep_graph::dijkstra::{dijkstra, ShortestPaths};
use psep_graph::graph::{Graph, NodeId};
use rand::{Rng, SeedableRng};

const SIM_OBS: ShardObs = ShardObs {
    prefix: "smallworld.sim",
    items: "targets",
    units: "hops",
};

/// A source of long-range contacts: the paper's distribution, the
/// Kleinberg baseline, uniform augmentation, etc.
///
/// Rules must be [`Sync`] so [`GreedySim::run_seeded`] can share them
/// across simulation workers.
pub trait ContactRule: Sync {
    /// Samples the long-range contact of `v` (one directed edge per
    /// vertex, per Definition 4). `None` = no usable contact this trial.
    fn sample_contact(&self, v: NodeId, rng: &mut dyn rand::RngCore) -> Option<NodeId>;
}

impl ContactRule for crate::augment::Augmentation {
    fn sample_contact(&self, v: NodeId, rng: &mut dyn rand::RngCore) -> Option<NodeId> {
        // &mut dyn RngCore itself implements Rng, satisfying the generic
        crate::augment::Augmentation::sample_contact(self, v, &mut &mut *rng)
    }
}

/// Routes greedily from `s` to `t` over `g` augmented by `rule`:
/// each step moves to the (graph or long-range) neighbour closest to `t`
/// in `G`. Contacts are sampled on first visit (deferred decisions —
/// equivalent because greedy strictly decreases `d(·, t)` and never
/// revisits). `dist_t` must be the Dijkstra result from `t`.
///
/// Returns the hop count, or `None` if `s` cannot reach `t`.
pub fn greedy_route(
    g: &Graph,
    rule: &dyn ContactRule,
    s: NodeId,
    t: NodeId,
    dist_t: &ShortestPaths,
    rng: &mut dyn rand::RngCore,
) -> Option<usize> {
    dist_t.dist(s)?;
    let mut contacts: HashMap<NodeId, Option<NodeId>> = HashMap::new();
    let mut cur = s;
    let mut hops = 0usize;
    while cur != t {
        let d_cur = dist_t.dist(cur)?;
        let mut best: Option<(NodeId, u64)> = None;
        for e in g.edges(cur) {
            if let Some(d) = dist_t.dist(e.to) {
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((e.to, d));
                }
            }
        }
        let contact = *contacts.entry(cur).or_insert_with(|| {
            psep_obs::counter!("smallworld.augment.samples").incr();
            rule.sample_contact(cur, rng)
        });
        if let Some(c) = contact {
            if let Some(d) = dist_t.dist(c) {
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((c, d));
                }
            }
        }
        let (next, d_next) = best?;
        // greedy progress is guaranteed by a graph neighbour on a
        // shortest path toward t
        debug_assert!(d_next < d_cur, "greedy step failed to progress");
        cur = next;
        hops += 1;
    }
    psep_obs::counter!("smallworld.greedy.routes").incr();
    psep_obs::counter!("smallworld.greedy.hops").add(hops as u64);
    Some(hops)
}

/// Statistics from a batch of greedy-routing trials.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Number of (s, t) trials run.
    pub trials: usize,
    /// Mean hops over successful trials.
    pub mean_hops: f64,
    /// Maximum hops observed.
    pub max_hops: usize,
    /// 95th-percentile hops.
    pub p95_hops: usize,
}

/// Batch greedy-routing simulator.
pub struct GreedySim<'a> {
    graph: &'a Graph,
    rule: &'a dyn ContactRule,
}

impl<'a> GreedySim<'a> {
    /// Creates a simulator for `graph` with contact `rule`.
    pub fn new(graph: &'a Graph, rule: &'a dyn ContactRule) -> Self {
        GreedySim { graph, rule }
    }

    /// Runs `trials` random (s, t) trials (fresh contacts per trial,
    /// matching the expectation in Theorem 3) and aggregates hop counts.
    pub fn run<R: rand::Rng>(&self, trials: usize, rng: &mut R) -> SimStats {
        let n = self.graph.num_nodes();
        let mut hops_all: Vec<usize> = Vec::with_capacity(trials);
        // group trials by target to reuse the Dijkstra from t
        let mut by_target: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for _ in 0..trials {
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            by_target.entry(t).or_default().push(s);
        }
        let mut targets: Vec<_> = by_target.into_iter().collect();
        targets.sort_by_key(|(t, _)| *t);
        for (t, sources) in targets {
            let dist_t = dijkstra(self.graph, &[t]);
            for s in sources {
                if let Some(h) = greedy_route(self.graph, self.rule, s, t, &dist_t, rng) {
                    hops_all.push(h);
                }
            }
        }
        summarize(&hops_all)
    }

    /// Like [`GreedySim::run`], but fully determined by `seed` and
    /// **independent of the thread count** (`0` = all available
    /// threads, honouring `PSEP_THREADS`).
    ///
    /// The (s, t) pairs are drawn from a ChaCha8 stream seeded with
    /// `seed`; each target group then gets its own RNG derived from
    /// `(seed, t)`, so contact sampling inside a group never depends
    /// on which worker runs it or in what order groups complete.
    pub fn run_seeded(&self, trials: usize, seed: u64, threads: usize) -> SimStats {
        let n = self.graph.num_nodes();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut by_target: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for _ in 0..trials {
            let s = NodeId::from_index(rng.gen_range(0..n));
            let t = NodeId::from_index(rng.gen_range(0..n));
            by_target.entry(t).or_default().push(s);
        }
        let mut targets: Vec<(NodeId, Vec<NodeId>)> = by_target.into_iter().collect();
        targets.sort_by_key(|(t, _)| *t);
        let runner = ShardedRunner::new(threads);
        let graph = self.graph;
        let rule = self.rule;
        let (per_target, _) = runner.map(&targets, Some(&SIM_OBS), |(t, sources)| {
            let dist_t = dijkstra(graph, &[*t]);
            // splitmix-style per-target seed: distinct targets get
            // decorrelated streams regardless of scheduling
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(
                seed ^ (t.0 as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut hops: Vec<usize> = Vec::with_capacity(sources.len());
            for &s in sources {
                if let Some(h) = greedy_route(graph, rule, s, *t, &dist_t, &mut rng) {
                    hops.push(h);
                }
            }
            let units: u64 = hops.iter().map(|&h| h as u64).sum();
            (hops, units)
        });
        let hops_all: Vec<usize> = per_target.into_iter().flatten().collect();
        summarize(&hops_all)
    }
}

fn summarize(hops: &[usize]) -> SimStats {
    if hops.is_empty() {
        return SimStats::default();
    }
    let mut sorted = hops.to_vec();
    sorted.sort_unstable();
    SimStats {
        trials: hops.len(),
        mean_hops: hops.iter().sum::<usize>() as f64 / hops.len() as f64,
        max_hops: *sorted.last().unwrap(),
        p95_hops: sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::build_augmentation;
    use psep_core::strategy::AutoStrategy;
    use psep_core::DecompositionTree;
    use psep_graph::generators::grids;
    use rand::SeedableRng;

    struct NoContacts;
    impl ContactRule for NoContacts {
        fn sample_contact(&self, _: NodeId, _: &mut dyn rand::RngCore) -> Option<NodeId> {
            None
        }
    }

    #[test]
    fn without_contacts_greedy_walks_shortest_path_hops() {
        let g = grids::grid2d(6, 6, 1);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let t = NodeId(35);
        let dist_t = dijkstra(&g, &[t]);
        let hops = greedy_route(&g, &NoContacts, NodeId(0), t, &dist_t, &mut rng).unwrap();
        assert_eq!(hops, 10); // Manhattan distance on the grid
    }

    #[test]
    fn augmented_routing_never_slower_than_plain_greedy() {
        let g = grids::grid2d(10, 10, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let aug = build_augmentation(&g, &tree, 5);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let sim = GreedySim::new(&g, &aug);
        let stats = sim.run(200, &mut rng);
        assert!(stats.trials > 0);
        // grid diameter is 18; greedy with shortcuts must average below it
        assert!(stats.mean_hops <= 18.0, "mean {}", stats.mean_hops);
        assert!(stats.max_hops <= 18);
    }

    #[test]
    fn seeded_sim_is_thread_count_invariant() {
        let g = grids::grid2d(8, 8, 1);
        let tree = DecompositionTree::build(&g, &AutoStrategy::default());
        let aug = build_augmentation(&g, &tree, 5);
        let sim = GreedySim::new(&g, &aug);
        let base = sim.run_seeded(150, 42, 1);
        assert!(base.trials > 0);
        for threads in [2, 4] {
            assert_eq!(base, sim.run_seeded(150, 42, threads), "threads={threads}");
        }
        // a different seed gives a different (but still valid) draw
        let other = sim.run_seeded(150, 43, 1);
        assert!(other.trials > 0);
    }

    #[test]
    fn self_trials_have_zero_hops() {
        let g = grids::grid2d(3, 3, 1);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let dist_t = dijkstra(&g, &[NodeId(4)]);
        let hops = greedy_route(&g, &NoContacts, NodeId(4), NodeId(4), &dist_t, &mut rng).unwrap();
        assert_eq!(hops, 0);
    }
}
