//! Small-world variants from the notes after Theorem 3.
//!
//! * **Note 1** (bounded treewidth): when every separator path is a
//!   single vertex, the generic [`crate::Augmentation`] already
//!   degenerates to "contact = the separator vertex", giving
//!   `O(k² log² n)` hops with no `Δ` dependence — experiment E5 measures
//!   this with the standard machinery.
//! * **Note 2** (low-diameter separators, unweighted graphs): instead of
//!   a random landmark, the vertex contacts the **closest vertex of
//!   `S(H_τ(v))`**, giving `O(log² n + δ log n)` hops when every
//!   separator has diameter `δ`. [`ClosestSeparatorRule`] implements
//!   this.

use psep_core::decomposition::DecompositionTree;
use psep_graph::dijkstra::dijkstra;
use psep_graph::graph::{Graph, NodeId};
use psep_graph::view::{NodeMask, SubgraphView};
use rand::Rng;

use crate::sim::ContactRule;

/// Note 2's contact rule: per level `τ`, the closest vertex of
/// `S(H_τ(v))` within the component `H_τ(v)`; `τ` is sampled uniformly.
#[derive(Clone, Debug)]
pub struct ClosestSeparatorRule {
    /// `closest[v][level]` = nearest separator vertex of the level's
    /// component (None when `v` is itself on that separator — contact
    /// suppressed, matching the "crossing costs O(δ) local steps" case).
    closest: Vec<Vec<Option<NodeId>>>,
}

impl ClosestSeparatorRule {
    /// Precomputes the closest separator vertex per (vertex, level):
    /// one multi-source Dijkstra per decomposition node.
    pub fn build(g: &Graph, tree: &DecompositionTree) -> Self {
        let n = g.num_nodes();
        let mut closest: Vec<Vec<Option<NodeId>>> = (0..n)
            .map(|i| {
                let v = NodeId::from_index(i);
                vec![None; tree.chain_of(v).len()]
            })
            .collect();
        for node in tree.nodes() {
            let sep = node.separator.vertices();
            if sep.is_empty() {
                continue;
            }
            let mask = NodeMask::from_nodes(n, node.vertices.iter().copied());
            let view = SubgraphView::new(g, &mask);
            let sp = dijkstra(&view, &sep);
            let depth = node.depth;
            for &v in &node.vertices {
                if let Some(root) = sp.root_of(v) {
                    if root != v {
                        closest[v.index()][depth] = Some(root);
                    }
                }
            }
        }
        ClosestSeparatorRule { closest }
    }

    /// Mean number of stored contacts per vertex (≤ chain length).
    pub fn mean_contacts(&self) -> f64 {
        let total: usize = self
            .closest
            .iter()
            .map(|lvls| lvls.iter().filter(|c| c.is_some()).count())
            .sum();
        total as f64 / self.closest.len().max(1) as f64
    }
}

impl ContactRule for ClosestSeparatorRule {
    fn sample_contact(&self, v: NodeId, rng: &mut dyn rand::RngCore) -> Option<NodeId> {
        let levels = &self.closest[v.index()];
        if levels.is_empty() {
            return None;
        }
        let mut r = &mut *rng;
        levels[Rng::gen_range(&mut r, 0..levels.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::GreedySim;
    use psep_core::strategy::FundamentalCycleStrategy;
    use psep_core::DecompositionTree;
    use psep_graph::generators::grids;
    use rand::SeedableRng;

    #[test]
    fn contacts_point_to_separator_vertices() {
        let g = grids::grid2d(8, 8, 1);
        let tree = DecompositionTree::build(&g, &FundamentalCycleStrategy::default());
        let rule = ClosestSeparatorRule::build(&g, &tree);
        // every contact of v at level d must be on S of the chain node
        for v in g.nodes() {
            let chain = tree.chain_of(v);
            for (d, &node_idx) in chain.iter().enumerate() {
                if let Some(c) = rule.closest[v.index()][d] {
                    let sep = tree.node(node_idx).separator.vertices();
                    assert!(sep.binary_search(&c).is_ok(), "{c:?} not on S(H_{d})");
                }
            }
        }
        assert!(rule.mean_contacts() > 0.0);
    }

    #[test]
    fn note2_speeds_up_greedy_on_grid() {
        let g = grids::grid2d(24, 24, 1);
        let tree = DecompositionTree::build(&g, &FundamentalCycleStrategy::default());
        let rule = ClosestSeparatorRule::build(&g, &tree);
        struct NoContacts;
        impl ContactRule for NoContacts {
            fn sample_contact(&self, _: NodeId, _: &mut dyn rand::RngCore) -> Option<NodeId> {
                None
            }
        }
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let plain = GreedySim::new(&g, &NoContacts).run(300, &mut rng);
        let note2 = GreedySim::new(&g, &rule).run(300, &mut rng);
        assert!(
            note2.mean_hops < plain.mean_hops,
            "note2 {} vs plain {}",
            note2.mean_hops,
            plain.mean_hops
        );
    }
}
