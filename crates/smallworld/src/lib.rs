#![warn(missing_docs)]
//! Small-worldization of `k`-path separable graphs (Section 4,
//! Theorem 3).
//!
//! An *augmentation distribution* `𝒟` (Definition 3) adds one random
//! long-range edge per vertex (Definition 4). The paper's distribution
//! over a decomposition tree: vertex `v` picks a uniform level `τ` of its
//! root-to-home chain, a uniform path `Q` of `S(H_τ(v))`, and a uniform
//! landmark from the Claim 1 set `L(Q)` — built from the closest path
//! vertex `x_c` with both linear (`(i/2)·d`) and geometric (`2^i·d`)
//! position thresholds in both directions.
//!
//! Greedy routing forwards to whichever neighbour (graph or long-range)
//! is closest to the target in `G`; Theorem 3 bounds the expected hop
//! count by `O(k² log² n log² Δ)`. The simulator uses deferred sampling
//! (a vertex's contact is drawn when the message first visits it), which
//! is distributionally equivalent because greedy routing never revisits
//! a vertex.

pub mod augment;
pub mod baselines;
pub mod landmarks;
pub mod sim;
pub mod variants;

pub use augment::{build_augmentation, build_augmentation_with, Augmentation};
pub use baselines::{KleinbergGrid, UniformAugmentation};
pub use landmarks::{claim1_holds, select_landmarks};
pub use sim::{greedy_route, ContactRule, GreedySim, SimStats};
pub use variants::ClosestSeparatorRule;
