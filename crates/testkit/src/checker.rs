//! Witness-path validation against the ground-truth graph.
//!
//! [`PathChecker`] is the one arbiter every suite that consumes
//! [`WitnessPath`]s shares (the equivalence suite, the serve loadgen,
//! and the E-path experiment): a claimed path is only accepted if its
//! edges all exist in the graph, its weight is the *exact* sum of those
//! edge weights, and that weight is within the `(1+ε)` stretch bound of
//! the true shortest-path distance.

use psep_graph::dijkstra::{distance, path_cost};
use psep_graph::{Graph, NodeId};
use psep_oracle::WitnessPath;

/// Validates claimed witness paths against a [`Graph`] and a stretch
/// bound `1 + ε`.
///
/// Every check recomputes the exact distance with Dijkstra, so this is
/// a test-side tool: correctness first, speed second.
pub struct PathChecker<'a> {
    g: &'a Graph,
    epsilon: f64,
}

impl<'a> PathChecker<'a> {
    /// A checker for `g` that accepts paths of weight up to
    /// `(1 + epsilon) ·` the exact distance.
    pub fn new(g: &'a Graph, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        Self { g, epsilon }
    }

    /// Validates the reported answer for the pair `(u, v)`.
    ///
    /// `None` is only legal when `u` and `v` are disconnected. A
    /// `Some(path)` must start at `u`, end at `v`, walk existing edges
    /// whose weights sum *exactly* to `path.weight`, and satisfy
    /// `exact ≤ weight ≤ (1+ε) · exact`.
    pub fn check(&self, u: NodeId, v: NodeId, path: Option<&WitnessPath>) -> Result<(), String> {
        let exact = distance(self.g, u, v);
        let Some(p) = path else {
            return match exact {
                None => Ok(()),
                Some(d) => Err(format!(
                    "no path reported for {u:?}->{v:?}, but they are connected (exact {d})"
                )),
            };
        };
        if p.nodes.first() != Some(&u) {
            return Err(format!(
                "path for {u:?}->{v:?} starts at {:?}, not {u:?}",
                p.nodes.first()
            ));
        }
        if p.nodes.last() != Some(&v) {
            return Err(format!(
                "path for {u:?}->{v:?} ends at {:?}, not {v:?}",
                p.nodes.last()
            ));
        }
        let Some(cost) = path_cost(self.g, &p.nodes) else {
            return Err(format!(
                "path for {u:?}->{v:?} uses an edge that does not exist: {:?}",
                p.nodes
            ));
        };
        if cost != p.weight {
            return Err(format!(
                "path for {u:?}->{v:?} claims weight {}, but its edges sum to {cost}",
                p.weight
            ));
        }
        let Some(exact) = exact else {
            return Err(format!(
                "path reported for {u:?}->{v:?}, but they are disconnected"
            ));
        };
        if p.weight < exact {
            return Err(format!(
                "path for {u:?}->{v:?} is shorter than the exact distance: {} < {exact}",
                p.weight
            ));
        }
        let bound = (1.0 + self.epsilon) * exact as f64;
        if p.weight as f64 > bound + 1e-9 {
            return Err(format!(
                "path for {u:?}->{v:?} breaks the stretch bound: {} > (1+{}) * {exact}",
                p.weight, self.epsilon
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -1- 1 -2- 2, plus a heavy detour 0 -9- 2; node 3 is isolated
    /// (self-loops are not supported, so it just has no edges).
    fn line_with_detour() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 2);
        g.add_edge(NodeId(0), NodeId(2), 9);
        g
    }

    fn path(nodes: &[u32], weight: u64) -> WitnessPath {
        WitnessPath {
            nodes: nodes.iter().map(|&v| NodeId(v)).collect(),
            weight,
        }
    }

    #[test]
    fn accepts_the_exact_shortest_path() {
        let g = line_with_detour();
        let checker = PathChecker::new(&g, 0.0);
        checker
            .check(NodeId(0), NodeId(2), Some(&path(&[0, 1, 2], 3)))
            .unwrap();
    }

    #[test]
    fn accepts_a_detour_within_stretch_and_rejects_it_outside() {
        let g = line_with_detour();
        let detour = path(&[0, 2], 9);
        PathChecker::new(&g, 2.0)
            .check(NodeId(0), NodeId(2), Some(&detour))
            .unwrap();
        let err = PathChecker::new(&g, 0.5)
            .check(NodeId(0), NodeId(2), Some(&detour))
            .unwrap_err();
        assert!(err.contains("stretch"), "{err}");
    }

    #[test]
    fn rejects_wrong_endpoints() {
        let g = line_with_detour();
        let checker = PathChecker::new(&g, 1.0);
        let err = checker
            .check(NodeId(1), NodeId(2), Some(&path(&[0, 1, 2], 3)))
            .unwrap_err();
        assert!(err.contains("starts at"), "{err}");
        let err = checker
            .check(NodeId(0), NodeId(1), Some(&path(&[0, 1, 2], 3)))
            .unwrap_err();
        assert!(err.contains("ends at"), "{err}");
    }

    #[test]
    fn rejects_phantom_edges_and_wrong_sums() {
        let g = line_with_detour();
        let checker = PathChecker::new(&g, 1.0);
        let err = checker
            .check(NodeId(1), NodeId(2), Some(&path(&[1, 3, 2], 5)))
            .unwrap_err();
        assert!(err.contains("does not exist"), "{err}");
        let err = checker
            .check(NodeId(0), NodeId(2), Some(&path(&[0, 1, 2], 4)))
            .unwrap_err();
        assert!(err.contains("sum to"), "{err}");
    }

    #[test]
    fn rejects_impossibly_short_paths() {
        // A path whose edges genuinely sum below the exact distance is
        // impossible on a consistent graph; simulate it by checking a
        // pair against a *different* graph's shortest path.
        let mut heavier = Graph::new(4);
        heavier.add_edge(NodeId(0), NodeId(1), 5);
        heavier.add_edge(NodeId(1), NodeId(2), 5);
        let checker = PathChecker::new(&heavier, 1.0);
        let err = checker
            .check(NodeId(0), NodeId(2), Some(&path(&[0, 1, 2], 3)))
            .unwrap_err();
        assert!(err.contains("sum to"), "{err}");
    }

    #[test]
    fn disconnection_must_agree() {
        let g = line_with_detour();
        let checker = PathChecker::new(&g, 1.0);
        // 3 is isolated: None is the only valid answer.
        checker.check(NodeId(0), NodeId(3), None).unwrap();
        let err = checker.check(NodeId(0), NodeId(2), None).unwrap_err();
        assert!(err.contains("connected"), "{err}");
    }

    #[test]
    fn self_pairs_accept_single_vertex_walks() {
        let g = line_with_detour();
        let checker = PathChecker::new(&g, 0.0);
        checker
            .check(NodeId(1), NodeId(1), Some(&path(&[1], 0)))
            .unwrap();
    }
}
