#![warn(missing_docs)]
//! Shared test support for the `path-separators` workspace.
//!
//! Before this crate existed, the seeded evaluation families and RNG
//! helpers were duplicated across `tests/pipeline.rs`,
//! `tests/property_pipeline.rs`, `crates/bench/src/families.rs`, and
//! `crates/oracle/tests/batch_equivalence.rs` — four copies that could
//! (and did) drift. This crate is the single home:
//!
//! * [`families`] — the named [`families::Family`] generators with
//!   per-family recommended strategies (also re-exported by
//!   `psep-bench` for the experiments);
//! * [`pipeline_families`] — the ten named end-to-end pipeline
//!   instances (graph + strategy) the integration suites walk;
//! * [`equivalence_families`] — the eight seeded instances every
//!   "parallel == sequential" equivalence suite covers;
//! * [`random_pairs`] — deterministic query-pair sampling;
//! * [`arb_graph`] — the workspace's proptest graph strategy;
//! * [`THREAD_COUNTS`] — the thread counts equivalence suites sweep;
//! * [`PathChecker`] — witness-path validation (edges exist, exact
//!   weight sum, `(1+ε)` stretch) shared by the path-equivalence
//!   suite, the serve loadgen, and the E-path experiment.

pub mod checker;
pub mod families;

pub use checker::PathChecker;

use proptest::prelude::*;
use psep_core::strategy::{
    AutoStrategy, FundamentalCycleStrategy, IterativeStrategy, SeparatorStrategy,
    TreeCenterStrategy, TreewidthStrategy,
};
use psep_graph::generators::{grids, ktree, planar_families, randomize_weights, special, trees};
use psep_graph::{Graph, NodeId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Thread counts the parallel-equivalence suites sweep: the sequential
/// fallback, the smallest real fan-out, and an oversubscribed count.
pub const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// The ten named end-to-end pipeline instances: one representative per
/// minor-free family the paper covers, each with its recommended
/// strategy, at fixed seeds. Used by the cross-crate pipeline suites
/// (decomposition → oracle → routing).
pub fn pipeline_families() -> Vec<(&'static str, Graph, Box<dyn SeparatorStrategy>)> {
    vec![
        (
            "tree",
            trees::random_weighted_tree(120, 7, 1),
            Box::new(TreeCenterStrategy),
        ),
        (
            "outerplanar",
            planar_families::random_outerplanar(100, 2),
            Box::new(TreewidthStrategy),
        ),
        (
            "series-parallel",
            ktree::series_parallel(110, 3),
            Box::new(TreewidthStrategy),
        ),
        (
            "2-tree",
            ktree::random_weighted_k_tree(100, 2, 5, 4).graph,
            Box::new(TreewidthStrategy),
        ),
        (
            "grid",
            grids::grid2d(10, 10, 1),
            Box::new(FundamentalCycleStrategy::default()),
        ),
        (
            "tri-grid",
            planar_families::triangulated_grid(9, 9, 5),
            Box::new(FundamentalCycleStrategy::default()),
        ),
        (
            "apollonian",
            planar_families::apollonian(90, 6),
            Box::new(IterativeStrategy::default()),
        ),
        (
            "torus",
            grids::torus2d(9, 9),
            Box::new(IterativeStrategy::default()),
        ),
        (
            "mesh+apex",
            special::mesh_with_apex(9),
            Box::new(IterativeStrategy::default()),
        ),
        (
            "auto-on-er",
            special::erdos_renyi_connected(90, 0.05, 8),
            Box::new(AutoStrategy::default()),
        ),
    ]
}

/// The eight seeded instances every "parallel == sequential" equivalence
/// suite covers — one per generator family the paper's experiments use,
/// small enough that the full suite stays fast.
pub fn equivalence_families() -> Vec<(&'static str, Graph)> {
    vec![
        ("grid", grids::grid2d(8, 8, 1)),
        (
            "weighted-grid",
            randomize_weights(&grids::grid2d(7, 7, 1), 1, 16, 5),
        ),
        ("tree", trees::random_weighted_tree(70, 9, 7)),
        ("ktree3", ktree::random_k_tree(60, 3, 11).graph),
        ("apollonian", planar_families::apollonian(60, 13)),
        (
            "triangulated-grid",
            planar_families::triangulated_grid(7, 7, 17),
        ),
        ("outerplanar", planar_families::random_outerplanar(50, 19)),
        ("hypercube", special::hypercube(6)),
    ]
}

/// Random vertex pairs (deterministic in `seed`).
pub fn random_pairs(n: usize, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                NodeId::from_index(rng.gen_range(0..n)),
                NodeId::from_index(rng.gen_range(0..n)),
            )
        })
        .collect()
}

/// The workspace's proptest graph strategy: random weighted trees,
/// random weighted `k`-trees, and connected partial 3-trees — the
/// bounded-treewidth shapes every layer must handle.
pub fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        (10usize..60, any::<u64>()).prop_map(|(n, s)| trees::random_weighted_tree(n, 9, s)),
        (10usize..50, 1usize..4, any::<u64>()).prop_map(|(n, k, s)| ktree::random_weighted_k_tree(
            n.max(k + 2),
            k,
            5,
            s
        )
        .graph),
        (8usize..40, any::<u64>()).prop_map(|(n, s)| ktree::partial_k_tree(n, 3, 0.6, s)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_graph::components::is_connected;

    #[test]
    fn pipeline_families_are_connected_and_named_uniquely() {
        let fams = pipeline_families();
        assert_eq!(fams.len(), 10);
        let mut names: Vec<_> = fams.iter().map(|(n, ..)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
        for (name, g, _) in &fams {
            assert!(is_connected(g), "{name} disconnected");
        }
    }

    #[test]
    fn equivalence_families_are_connected() {
        let fams = equivalence_families();
        assert_eq!(fams.len(), 8);
        for (name, g) in &fams {
            assert!(is_connected(g), "{name} disconnected");
            assert!(g.num_nodes() >= 40, "{name} too small");
        }
    }

    #[test]
    fn pairs_are_deterministic() {
        assert_eq!(random_pairs(10, 5, 3), random_pairs(10, 5, 3));
        assert_ne!(random_pairs(10, 5, 3), random_pairs(10, 5, 4));
    }
}
