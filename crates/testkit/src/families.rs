//! Named graph families with per-family recommended separator
//! strategies, shared by the experiments and the test suites.

use psep_core::strategy::{
    AutoStrategy, FundamentalCycleStrategy, IterativeStrategy, SeparatorStrategy,
    TreeCenterStrategy, TreewidthStrategy,
};
use psep_graph::generators::{grids, ktree, planar_families, special, trees};
use psep_graph::Graph;

/// The evaluation families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Uniform random recursive tree (`K₃`-minor-free).
    Tree,
    /// Random maximal outerplanar (`K₄`-, `K_{2,3}`-minor-free).
    Outerplanar,
    /// Connected partial 2-tree (series-parallel, `K₄`-minor-free).
    SeriesParallel,
    /// Random `k`-tree of width 3 (`K₅`-minor-free).
    KTree3,
    /// Unweighted square grid (planar).
    Grid,
    /// Grid with random cell diagonals (planar, treewidth `Θ(√n)`).
    TriangulatedGrid,
    /// Random Apollonian network (planar maximal).
    Apollonian,
    /// Torus (genus 1).
    Torus,
    /// `t×t` mesh plus universal apex (`K₆`-minor-free, §5.2).
    MeshApex,
}

/// All families, in display order.
pub const ALL_FAMILIES: [Family; 9] = [
    Family::Tree,
    Family::Outerplanar,
    Family::SeriesParallel,
    Family::KTree3,
    Family::Grid,
    Family::TriangulatedGrid,
    Family::Apollonian,
    Family::Torus,
    Family::MeshApex,
];

impl Family {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Tree => "tree",
            Family::Outerplanar => "outerplanar",
            Family::SeriesParallel => "series-parallel",
            Family::KTree3 => "3-tree",
            Family::Grid => "grid",
            Family::TriangulatedGrid => "tri-grid",
            Family::Apollonian => "apollonian",
            Family::Torus => "torus",
            Family::MeshApex => "mesh+apex",
        }
    }

    /// Generates an instance with roughly `n` vertices.
    pub fn make(self, n: usize, seed: u64) -> Graph {
        let side = (n as f64).sqrt().round() as usize;
        match self {
            Family::Tree => trees::random_tree(n, seed),
            Family::Outerplanar => planar_families::random_outerplanar(n, seed),
            Family::SeriesParallel => ktree::series_parallel(n, seed),
            Family::KTree3 => ktree::random_k_tree(n, 3, seed).graph,
            Family::Grid => grids::grid2d(side.max(2), side.max(2), 1),
            Family::TriangulatedGrid => {
                planar_families::triangulated_grid(side.max(2), side.max(2), seed)
            }
            Family::Apollonian => planar_families::apollonian(n, seed),
            Family::Torus => grids::torus2d(side.max(3), side.max(3)),
            Family::MeshApex => special::mesh_with_apex(side.max(2)),
        }
    }

    /// The per-family recommended strategy (the per-family guarantee the
    /// paper's theory provides).
    pub fn strategy(self) -> Box<dyn SeparatorStrategy> {
        match self {
            Family::Tree => Box::new(TreeCenterStrategy),
            Family::Outerplanar | Family::SeriesParallel | Family::KTree3 => {
                Box::new(TreewidthStrategy)
            }
            Family::Grid | Family::TriangulatedGrid | Family::Apollonian => {
                Box::new(FundamentalCycleStrategy::default())
            }
            Family::Torus | Family::MeshApex => Box::new(IterativeStrategy::default()),
        }
    }

    /// A reasonable general-purpose strategy (dispatching).
    pub fn auto() -> Box<dyn SeparatorStrategy> {
        Box::new(AutoStrategy::default())
    }

    /// Whether the family is planar (for experiment E2).
    pub fn is_planar(self) -> bool {
        matches!(
            self,
            Family::Tree
                | Family::Outerplanar
                | Family::SeriesParallel
                | Family::Grid
                | Family::TriangulatedGrid
                | Family::Apollonian
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_graph::components::is_connected;

    #[test]
    fn all_families_generate_connected_graphs() {
        for fam in ALL_FAMILIES {
            let g = fam.make(120, 3);
            assert!(is_connected(&g), "{} disconnected", fam.name());
            assert!(g.num_nodes() >= 100, "{} too small", fam.name());
        }
    }

    #[test]
    fn strategies_separate_their_families() {
        for fam in ALL_FAMILIES {
            let g = fam.make(100, 1);
            let comp: Vec<_> = g.nodes().collect();
            let sep = fam.strategy().separate(&g, &comp);
            psep_core::check::check_separator(&g, &comp, &sep, None)
                .unwrap_or_else(|e| panic!("{}: {e}", fam.name()));
        }
    }
}
