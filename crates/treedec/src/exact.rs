//! Exact treewidth by branch-and-bound over elimination orders, for
//! graphs of up to 64 vertices — used by tests and experiment E9 to
//! validate the elimination heuristics.
//!
//! The search explores elimination prefixes with memoization on the set
//! of eliminated vertices (the width of the best completion depends only
//! on that set), pruning with:
//!
//! * the running lower bound (a clique forces width ≥ clique size − 1;
//!   we use the degeneracy bound, which is cheap and sound);
//! * the current best upper bound (initialized from the min-fill
//!   heuristic).

use std::collections::HashMap;

use psep_graph::graph::NodeId;
use psep_graph::view::GraphRef;

use crate::decomposition::TreeDecomposition;
use crate::elimination::{decomposition_from_order, min_fill_decomposition};

/// Exact treewidth of `g` (≤ 64 vertices), with a witnessing elimination
/// order.
///
/// # Panics
///
/// Panics if `g` has more than 64 vertices.
///
/// # Example
///
/// ```
/// use psep_graph::generators::grids;
/// use psep_treedec::exact_treewidth;
///
/// let g = grids::grid2d(3, 5, 1); // treewidth of a 3×n grid is 3
/// assert_eq!(exact_treewidth(&g).0, 3);
/// ```
pub fn exact_treewidth<G: GraphRef>(g: &G) -> (usize, Vec<NodeId>) {
    let nodes: Vec<NodeId> = g.node_iter().collect();
    let n = nodes.len();
    assert!(n <= 64, "exact treewidth supports at most 64 vertices");
    if n == 0 {
        return (0, Vec::new());
    }
    // dense adjacency as bitmasks over positions in `nodes`
    let mut pos = HashMap::new();
    for (i, &v) in nodes.iter().enumerate() {
        pos.insert(v, i);
    }
    let mut adj = vec![0u64; n];
    for (i, &v) in nodes.iter().enumerate() {
        for e in g.neighbors(v) {
            if let Some(&j) = pos.get(&e.to) {
                adj[i] |= 1 << j;
            }
        }
        adj[i] &= !(1 << i);
    }

    // upper bound from the min-fill heuristic
    let heuristic = min_fill_decomposition(g);
    let mut best = heuristic.width();
    let lower = degeneracy(&adj);
    if best == lower {
        let order = heuristic_order(&adj, n);
        return (best, order.into_iter().map(|i| nodes[i]).collect());
    }

    let mut memo: HashMap<u64, usize> = HashMap::new();
    let mut order_buf = vec![0usize; n];
    let mut best_order: Vec<usize> = heuristic_order(&adj, n);
    bb(
        &adj,
        0u64,
        0usize,
        0,
        &mut best,
        lower,
        &mut memo,
        &mut order_buf,
        &mut best_order,
    );
    (best, best_order.into_iter().map(|i| nodes[i]).collect())
}

/// Exact-width tree decomposition for graphs of ≤ 64 vertices.
pub fn exact_decomposition<G: GraphRef>(g: &G) -> TreeDecomposition {
    let (_, order) = exact_treewidth(g);
    decomposition_from_order(g, &order)
}

/// Degeneracy lower bound on the treewidth of `g` (≤ 64 vertices):
/// repeatedly remove a minimum-degree vertex; the maximum removed degree
/// lower-bounds the treewidth.
///
/// # Panics
///
/// Panics if `g` has more than 64 vertices.
pub fn treewidth_lower_bound<G: GraphRef>(g: &G) -> usize {
    let nodes: Vec<NodeId> = g.node_iter().collect();
    let n = nodes.len();
    assert!(n <= 64, "lower bound supports at most 64 vertices");
    let mut pos = HashMap::new();
    for (i, &v) in nodes.iter().enumerate() {
        pos.insert(v, i);
    }
    let mut adj = vec![0u64; n];
    for (i, &v) in nodes.iter().enumerate() {
        for e in g.neighbors(v) {
            if let Some(&j) = pos.get(&e.to) {
                adj[i] |= 1 << j;
            }
        }
        adj[i] &= !(1 << i);
    }
    degeneracy(&adj)
}

/// Degeneracy lower bound: repeatedly remove a minimum-degree vertex;
/// the maximum removed degree lower-bounds the treewidth.
fn degeneracy(adj: &[u64]) -> usize {
    let n = adj.len();
    let mut alive = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut working: Vec<u64> = adj.to_vec();
    let mut max_min = 0usize;
    for _ in 0..n {
        let (v, deg) = (0..n)
            .filter(|&i| alive & (1 << i) != 0)
            .map(|i| (i, (working[i] & alive).count_ones() as usize))
            .min_by_key(|&(_, d)| d)
            .expect("alive vertex");
        max_min = max_min.max(deg);
        alive &= !(1 << v);
        let _ = &mut working;
    }
    max_min
}

fn heuristic_order(adj: &[u64], n: usize) -> Vec<usize> {
    // min-fill order recomputed on the bitmask representation
    let mut working: Vec<u64> = adj.to_vec();
    let mut alive = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let v = (0..n)
            .filter(|&i| alive & (1 << i) != 0)
            .min_by_key(|&i| fill_cost(&working, alive, i))
            .expect("alive vertex");
        eliminate(&mut working, &mut alive, v);
        order.push(v);
    }
    order
}

fn fill_cost(adj: &[u64], alive: u64, v: usize) -> (usize, usize) {
    let nb = adj[v] & alive;
    let mut fill = 0usize;
    let mut rest = nb;
    while rest != 0 {
        let a = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        fill += (nb & !adj[a] & !(1u64 << a)).count_ones() as usize;
    }
    (fill / 2, v)
}

fn eliminate(adj: &mut [u64], alive: &mut u64, v: usize) {
    let nb = adj[v] & *alive & !(1u64 << v);
    let mut rest = nb;
    while rest != 0 {
        let a = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        adj[a] |= nb & !(1u64 << a);
    }
    *alive &= !(1u64 << v);
}

#[allow(clippy::too_many_arguments)]
fn bb(
    adj: &[u64],
    eliminated: u64,
    depth: usize,
    width_so_far: usize,
    best: &mut usize,
    global_lower: usize,
    memo: &mut HashMap<u64, usize>,
    order_buf: &mut Vec<usize>,
    best_order: &mut Vec<usize>,
) {
    let n = adj.len();
    if depth == n {
        if width_so_far < *best {
            *best = width_so_far;
            best_order.copy_from_slice(order_buf);
        }
        return;
    }
    if width_so_far >= *best || *best == global_lower {
        return; // cannot improve
    }
    if let Some(&seen) = memo.get(&eliminated) {
        if seen <= width_so_far {
            return; // a no-worse prefix reached this state already
        }
    }
    memo.insert(eliminated, width_so_far);

    // current fill graph: recompute neighbourhoods through eliminated set
    // via "reachability through eliminated vertices" (standard trick:
    // u's fill-neighbours = alive vertices reachable from u via
    // eliminated vertices only).
    let alive = !eliminated & mask(n);
    for v in 0..n {
        if alive & (1 << v) == 0 {
            continue;
        }
        let deg = fill_degree(adj, eliminated, v, n);
        let new_width = width_so_far.max(deg);
        if new_width >= *best {
            continue;
        }
        order_buf[depth] = v;
        bb(
            adj,
            eliminated | (1 << v),
            depth + 1,
            new_width,
            best,
            global_lower,
            memo,
            order_buf,
            best_order,
        );
        if *best == global_lower {
            return;
        }
    }
}

fn mask(n: usize) -> u64 {
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Degree of `v` in the fill graph after eliminating `eliminated`:
/// the number of alive vertices reachable from `v` through eliminated
/// vertices only.
fn fill_degree(adj: &[u64], eliminated: u64, v: usize, n: usize) -> usize {
    let alive = !eliminated & mask(n);
    let mut seen = 1u64 << v;
    let mut frontier = adj[v];
    let mut reach_alive = 0u64;
    while frontier != 0 {
        let u = frontier.trailing_zeros() as usize;
        frontier &= frontier - 1;
        if seen & (1 << u) != 0 {
            continue;
        }
        seen |= 1 << u;
        if alive & (1 << u) != 0 {
            reach_alive |= 1 << u;
        } else {
            frontier |= adj[u] & !seen;
        }
    }
    reach_alive.count_ones() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_graph::generators::{grids, ktree, planar_families, special, trees};

    #[test]
    fn tree_width_one() {
        let g = trees::random_tree(20, 5);
        let (w, order) = exact_treewidth(&g);
        assert_eq!(w, 1);
        assert_eq!(order.len(), 20);
        let dec = exact_decomposition(&g);
        dec.validate(&g).unwrap();
        assert_eq!(dec.width(), 1);
    }

    #[test]
    fn cycle_width_two() {
        let g = trees::cycle(9);
        assert_eq!(exact_treewidth(&g).0, 2);
    }

    #[test]
    fn complete_graph_width() {
        let g = special::complete(6);
        assert_eq!(exact_treewidth(&g).0, 5);
    }

    #[test]
    fn k_trees_have_exact_width() {
        for k in 1..=3 {
            let kt = ktree::random_k_tree(14, k, 2);
            assert_eq!(exact_treewidth(&kt.graph).0, k, "k = {k}");
        }
    }

    #[test]
    fn grid_3xn_width_three() {
        let g = grids::grid2d(3, 6, 1);
        assert_eq!(exact_treewidth(&g).0, 3);
    }

    #[test]
    fn grid_4x4_width_four() {
        let g = grids::grid2d(4, 4, 1);
        assert_eq!(exact_treewidth(&g).0, 4);
    }

    #[test]
    fn outerplanar_at_most_two() {
        let g = planar_families::random_outerplanar(14, 3);
        assert!(exact_treewidth(&g).0 <= 2);
    }

    #[test]
    fn complete_bipartite_width() {
        // tw(K_{r,s}) = min(r, s) for r,s >= 1
        let g = special::complete_bipartite(3, 5);
        assert_eq!(exact_treewidth(&g).0, 3);
    }

    #[test]
    fn lower_bound_brackets_exact() {
        for seed in 0..4 {
            let g = ktree::partial_k_tree(18, 3, 0.6, seed);
            let lb = treewidth_lower_bound(&g);
            let (exact, _) = exact_treewidth(&g);
            assert!(lb <= exact, "lb {lb} > exact {exact}");
        }
        // degeneracy of a k-tree equals k
        let kt = ktree::random_k_tree(16, 3, 1);
        assert_eq!(treewidth_lower_bound(&kt.graph), 3);
    }

    #[test]
    fn heuristics_match_exact_on_small_graphs() {
        for seed in 0..4 {
            let g = ktree::partial_k_tree(16, 3, 0.6, seed);
            let (exact, _) = exact_treewidth(&g);
            let heur = crate::elimination::min_fill_decomposition(&g).width();
            assert!(heur >= exact);
            assert!(heur <= exact + 1, "heuristic {heur} vs exact {exact}");
        }
    }

    #[test]
    fn witness_order_realizes_width() {
        let g = grids::grid2d(4, 4, 1);
        let (w, order) = exact_treewidth(&g);
        let dec = decomposition_from_order(&g, &order);
        dec.validate(&g).unwrap();
        assert_eq!(dec.width(), w);
    }
}
