//! The [`TreeDecomposition`] type: bags, tree structure, axioms, width.

use psep_graph::graph::NodeId;
use psep_graph::view::GraphRef;
use psep_graph::UnionFind;

/// A tree-decomposition of a graph: a tree whose vertices (*bags*) are
/// vertex subsets satisfying the three axioms of Section 2.1:
///
/// 1. every graph vertex appears in some bag;
/// 2. both endpoints of every edge appear together in some bag;
/// 3. the bags containing any fixed vertex induce a subtree.
///
/// Bags are stored sorted; tree edges connect bag indices.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    bags: Vec<Vec<NodeId>>,
    tree_edges: Vec<(usize, usize)>,
}

/// Why a [`TreeDecomposition`] failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecompositionError {
    /// The bag graph is not a tree (wrong edge count or disconnected).
    NotATree,
    /// Some vertex appears in no bag.
    MissingVertex(NodeId),
    /// Some edge has no bag containing both endpoints.
    MissingEdge(NodeId, NodeId),
    /// The bags containing a vertex do not induce a connected subtree.
    DisconnectedVertex(NodeId),
}

impl std::fmt::Display for DecompositionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompositionError::NotATree => write!(f, "bag graph is not a tree"),
            DecompositionError::MissingVertex(v) => write!(f, "vertex {v:?} in no bag"),
            DecompositionError::MissingEdge(u, v) => {
                write!(f, "edge {u:?}-{v:?} in no bag")
            }
            DecompositionError::DisconnectedVertex(v) => {
                write!(f, "bags containing {v:?} are disconnected")
            }
        }
    }
}

impl std::error::Error for DecompositionError {}

impl TreeDecomposition {
    /// Builds a decomposition from bags and tree edges. Bags are sorted
    /// and deduplicated internally; validity is *not* checked here — call
    /// [`TreeDecomposition::validate`].
    pub fn new(mut bags: Vec<Vec<NodeId>>, tree_edges: Vec<(usize, usize)>) -> Self {
        for bag in &mut bags {
            bag.sort_unstable();
            bag.dedup();
        }
        TreeDecomposition { bags, tree_edges }
    }

    /// A trivial decomposition: one bag holding every vertex of `g`.
    pub fn trivial<G: GraphRef>(g: &G) -> Self {
        TreeDecomposition::new(vec![g.node_iter().collect()], Vec::new())
    }

    /// The bags.
    pub fn bags(&self) -> &[Vec<NodeId>] {
        &self.bags
    }

    /// Bag at index `i`.
    pub fn bag(&self, i: usize) -> &[NodeId] {
        &self.bags[i]
    }

    /// Number of bags.
    pub fn num_bags(&self) -> usize {
        self.bags.len()
    }

    /// Edges of the decomposition tree, as bag-index pairs.
    pub fn tree_edges(&self) -> &[(usize, usize)] {
        &self.tree_edges
    }

    /// Bag-index neighbours of bag `i`.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.tree_edges.iter().filter_map(move |&(a, b)| {
            if a == i {
                Some(b)
            } else if b == i {
                Some(a)
            } else {
                None
            }
        })
    }

    /// Width: `max |bag| − 1`.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Whether bag `i` contains `v` (bags are sorted).
    pub fn bag_contains(&self, i: usize, v: NodeId) -> bool {
        self.bags[i].binary_search(&v).is_ok()
    }

    /// Checks the three axioms against `g`.
    ///
    /// # Errors
    ///
    /// Returns the first violated axiom.
    pub fn validate<G: GraphRef>(&self, g: &G) -> Result<(), DecompositionError> {
        let b = self.bags.len();
        // tree-ness: b nodes need b-1 edges and a single connected piece
        if b > 0 {
            if self.tree_edges.len() != b - 1 {
                return Err(DecompositionError::NotATree);
            }
            let mut uf = UnionFind::new(b);
            for &(x, y) in &self.tree_edges {
                if x >= b || y >= b || !uf.union(x, y) {
                    return Err(DecompositionError::NotATree);
                }
            }
        }
        // axiom 1 + locate bags per vertex for axiom 3
        let n = g.universe();
        let mut holder: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, bag) in self.bags.iter().enumerate() {
            for &v in bag {
                holder[v.index()].push(i);
            }
        }
        for v in g.node_iter() {
            if holder[v.index()].is_empty() {
                return Err(DecompositionError::MissingVertex(v));
            }
        }
        // axiom 2
        for u in g.node_iter() {
            for e in g.neighbors(u) {
                if u < e.to {
                    let ok = holder[u.index()]
                        .iter()
                        .any(|&i| self.bag_contains(i, e.to));
                    if !ok {
                        return Err(DecompositionError::MissingEdge(u, e.to));
                    }
                }
            }
        }
        // axiom 3: bags holding v form a connected subtree
        for v in g.node_iter() {
            let bags_v = &holder[v.index()];
            if bags_v.len() <= 1 {
                continue;
            }
            let inset: std::collections::HashSet<usize> = bags_v.iter().copied().collect();
            let mut uf = UnionFind::new(self.bags.len());
            for &(x, y) in &self.tree_edges {
                if inset.contains(&x) && inset.contains(&y) {
                    uf.union(x, y);
                }
            }
            let root = uf.find(bags_v[0]);
            for &i in &bags_v[1..] {
                if uf.find(i) != root {
                    return Err(DecompositionError::DisconnectedVertex(v));
                }
            }
        }
        Ok(())
    }

    /// Restricts the decomposition to the vertex set `keep` — the
    /// operation `𝒯 ∩ X` of Section 2.1. Bags are intersected with
    /// `keep`; empty bags are dropped and the tree is re-stitched by
    /// contracting through removed bags (preserving the subtree axiom).
    pub fn restrict(&self, keep: &dyn Fn(NodeId) -> bool) -> TreeDecomposition {
        let mut new_bags: Vec<Vec<NodeId>> = Vec::new();
        // Map old bag -> new bag index (None for emptied bags).
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(self.bags.len());
        for bag in &self.bags {
            let nb: Vec<NodeId> = bag.iter().copied().filter(|&v| keep(v)).collect();
            if nb.is_empty() {
                remap.push(None);
            } else {
                remap.push(Some(new_bags.len()));
                new_bags.push(nb);
            }
        }
        // Re-stitch: union-find over old bags where emptied bags act as
        // connectors; for each old tree edge, connect the nearest
        // surviving representatives.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.bags.len()];
        for &(x, y) in &self.tree_edges {
            adj[x].push(y);
            adj[y].push(x);
        }
        let mut new_edges: Vec<(usize, usize)> = Vec::new();
        let mut uf = UnionFind::new(new_bags.len().max(1));
        // DFS over the old tree; for each surviving bag, link to the
        // closest surviving ancestor.
        let b = self.bags.len();
        let mut visited = vec![false; b];
        for start in 0..b {
            if visited[start] {
                continue;
            }
            // stack of (bag, closest surviving ancestor's new index)
            let mut stack = vec![(start, None::<usize>)];
            visited[start] = true;
            while let Some((cur, anc)) = stack.pop() {
                let here = remap[cur];
                let next_anc = here.or(anc);
                if let (Some(h), Some(a)) = (here, anc) {
                    if uf.union(h, a) {
                        new_edges.push((h, a));
                    }
                }
                for &nb in &adj[cur] {
                    if !visited[nb] {
                        visited[nb] = true;
                        stack.push((nb, next_anc));
                    }
                }
            }
        }
        TreeDecomposition {
            bags: new_bags,
            tree_edges: new_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_graph::generators::trees;
    use psep_graph::Graph;

    fn path4() -> Graph {
        trees::path(4)
    }

    fn path4_dec() -> TreeDecomposition {
        TreeDecomposition::new(
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(1), NodeId(2)],
                vec![NodeId(2), NodeId(3)],
            ],
            vec![(0, 1), (1, 2)],
        )
    }

    #[test]
    fn valid_path_decomposition() {
        let g = path4();
        let d = path4_dec();
        assert!(d.validate(&g).is_ok());
        assert_eq!(d.width(), 1);
    }

    #[test]
    fn trivial_is_valid() {
        let g = path4();
        let d = TreeDecomposition::trivial(&g);
        assert!(d.validate(&g).is_ok());
        assert_eq!(d.width(), 3);
    }

    #[test]
    fn detects_missing_edge() {
        let g = path4();
        let d = TreeDecomposition::new(
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(1), NodeId(2)],
                vec![NodeId(3)],
            ],
            vec![(0, 1), (1, 2)],
        );
        assert_eq!(
            d.validate(&g),
            Err(DecompositionError::MissingEdge(NodeId(2), NodeId(3)))
        );
    }

    #[test]
    fn detects_missing_vertex() {
        let g = path4();
        let d = TreeDecomposition::new(
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(1), NodeId(2), NodeId(3)],
            ],
            vec![(0, 1)],
        );
        assert!(d.validate(&g).is_ok());
        let d2 = TreeDecomposition::new(vec![vec![NodeId(0), NodeId(1)]], vec![]);
        assert_eq!(
            d2.validate(&g),
            Err(DecompositionError::MissingVertex(NodeId(2)))
        );
    }

    #[test]
    fn detects_disconnected_vertex() {
        let g = path4();
        // vertex 1 appears in bags 0 and 2 which are not adjacent
        let d = TreeDecomposition::new(
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(1), NodeId(2)],
                vec![NodeId(1), NodeId(2), NodeId(3)],
            ],
            vec![(0, 1), (1, 2)],
        );
        assert!(d.validate(&g).is_ok());
        let bad = TreeDecomposition::new(
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(2), NodeId(1)],
                vec![NodeId(2), NodeId(3)],
            ],
            vec![(0, 2), (1, 2)], // bags {0,1} and {1,2} not adjacent
        );
        assert_eq!(
            bad.validate(&g),
            Err(DecompositionError::DisconnectedVertex(NodeId(1)))
        );
    }

    #[test]
    fn detects_non_tree() {
        let g = path4();
        let d = TreeDecomposition::new(
            vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(1), NodeId(2)],
                vec![NodeId(2), NodeId(3)],
            ],
            vec![(0, 1)],
        );
        assert_eq!(d.validate(&g), Err(DecompositionError::NotATree));
    }

    #[test]
    fn restrict_keeps_validity() {
        let g = path4();
        let d = path4_dec();
        // remove vertex 1 → graph splits; restricted decomposition must
        // still be a valid decomposition of the induced subgraph
        let keep = |v: NodeId| v != NodeId(1);
        let r = d.restrict(&keep);
        let mut mask = psep_graph::NodeMask::all(4);
        mask.remove(NodeId(1));
        let view = psep_graph::SubgraphView::new(&g, &mask);
        assert!(r.validate(&view).is_ok());
    }

    #[test]
    fn restrict_stitches_through_emptied_bags() {
        // chain of bags where the middle bag empties entirely
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 1);
        let d = TreeDecomposition::new(
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)], vec![NodeId(0)]],
            vec![(0, 1), (1, 2)],
        );
        let keep = |v: NodeId| v != NodeId(2);
        let r = d.restrict(&keep);
        assert_eq!(r.num_bags(), 2);
        assert_eq!(r.tree_edges().len(), 1);
    }
}
