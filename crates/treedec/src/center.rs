//! Lemma 1: every tree decomposition has a **center bag** whose removal
//! leaves connected components of at most `n/2` vertices.

use psep_graph::components::largest_component_after_removal;
use psep_graph::graph::NodeId;
use psep_graph::view::GraphRef;

use crate::decomposition::TreeDecomposition;

/// Finds a center bag of `dec` for `g` (Lemma 1): the index of a bag `C`
/// such that every connected component of `g \ C` has at most
/// `⌊n/2⌋` vertices, where `n` is the number of alive vertices of `g`.
///
/// Walks the decomposition tree toward the large component (the classical
/// sink argument), falling back to a full scan if the walk stalls; the
/// existence of a center is guaranteed by Lemma 1, so the scan cannot
/// fail on a valid decomposition.
///
/// # Panics
///
/// Panics if `dec` has no bags, or if no bag is a center (which implies
/// `dec` is not a valid decomposition of `g`).
///
/// # Example
///
/// ```
/// use psep_graph::generators::trees;
/// use psep_treedec::{center_bag, min_degree_decomposition};
/// use psep_graph::components::largest_component_after_removal;
///
/// let g = trees::path(9);
/// let dec = min_degree_decomposition(&g);
/// let c = center_bag(&g, &dec);
/// let biggest = largest_component_after_removal(&g, dec.bag(c));
/// assert!(biggest <= 4); // ⌊9/2⌋
/// ```
pub fn center_bag<G: GraphRef>(g: &G, dec: &TreeDecomposition) -> usize {
    assert!(dec.num_bags() > 0, "decomposition has no bags");
    let n = g.node_count();
    let half = n / 2;
    let alive_bag = |i: usize| -> Vec<NodeId> {
        dec.bag(i)
            .iter()
            .copied()
            .filter(|&v| g.contains_node(v))
            .collect()
    };

    let mut visited = vec![false; dec.num_bags()];
    let mut cur = 0usize;
    loop {
        if visited[cur] {
            break; // walk cycled (numeric ties); fall back to scan
        }
        visited[cur] = true;
        let bag = alive_bag(cur);
        let big = big_component(g, &bag, half);
        let Some(witness) = big else {
            return cur;
        };
        // move toward the neighbour bag whose side of the tree contains
        // a bag holding the witness vertex
        let next = dec
            .neighbors(cur)
            .find(|&nb| side_contains(dec, cur, nb, witness));
        match next {
            Some(nb) => cur = nb,
            None => break,
        }
    }
    // Fallback: exhaustive scan (guaranteed to find one by Lemma 1).
    for i in 0..dec.num_bags() {
        let bag = alive_bag(i);
        if largest_component_after_removal(g, &bag) <= half {
            return i;
        }
    }
    panic!("no center bag found: decomposition is not valid for this graph");
}

/// Returns a vertex of some component of `g \ bag` larger than `half`,
/// or `None` if all components are small enough.
fn big_component<G: GraphRef>(g: &G, bag: &[NodeId], half: usize) -> Option<NodeId> {
    let n = g.universe();
    let mut dead = vec![false; n];
    for &v in bag {
        dead[v.index()] = true;
    }
    let mut seen = vec![false; n];
    let mut stack = Vec::new();
    for v in g.node_iter() {
        if seen[v.index()] || dead[v.index()] {
            continue;
        }
        let mut size = 0usize;
        seen[v.index()] = true;
        stack.push(v);
        let witness = v;
        while let Some(u) = stack.pop() {
            size += 1;
            for e in g.neighbors(u) {
                let i = e.to.index();
                if !seen[i] && !dead[i] {
                    seen[i] = true;
                    stack.push(e.to);
                }
            }
        }
        if size > half {
            return Some(witness);
        }
    }
    None
}

/// Whether the side of the decomposition tree reached from `cur` through
/// neighbour `nb` contains a bag holding `v`.
fn side_contains(dec: &TreeDecomposition, cur: usize, nb: usize, v: NodeId) -> bool {
    let mut seen = vec![false; dec.num_bags()];
    seen[cur] = true;
    seen[nb] = true;
    let mut stack = vec![nb];
    while let Some(x) = stack.pop() {
        if dec.bag_contains(x, v) {
            return true;
        }
        for y in dec.neighbors(x) {
            if !seen[y] {
                seen[y] = true;
                stack.push(y);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elimination::min_degree_decomposition;
    use psep_graph::components::largest_component_after_removal;
    use psep_graph::generators::{grids, ktree, trees};

    fn assert_center<G: GraphRef>(g: &G, dec: &TreeDecomposition) {
        let c = center_bag(g, dec);
        let bag: Vec<NodeId> = dec
            .bag(c)
            .iter()
            .copied()
            .filter(|&v| g.contains_node(v))
            .collect();
        assert!(
            largest_component_after_removal(g, &bag) <= g.node_count() / 2,
            "bag {c} is not a center"
        );
    }

    #[test]
    fn center_of_path_decomposition() {
        let g = trees::path(9);
        let dec = min_degree_decomposition(&g);
        assert_center(&g, &dec);
    }

    #[test]
    fn center_of_random_trees() {
        for seed in 0..5 {
            let g = trees::random_tree(64, seed);
            let dec = min_degree_decomposition(&g);
            assert_center(&g, &dec);
        }
    }

    #[test]
    fn center_of_k_tree() {
        let kt = ktree::random_k_tree(50, 3, 2);
        let dec = min_degree_decomposition(&kt.graph);
        assert_center(&kt.graph, &dec);
    }

    #[test]
    fn center_of_grid() {
        let g = grids::grid2d(6, 6, 1);
        let dec = min_degree_decomposition(&g);
        assert_center(&g, &dec);
    }

    #[test]
    fn center_of_trivial_decomposition() {
        let g = trees::path(5);
        let dec = TreeDecomposition::trivial(&g);
        assert_eq!(center_bag(&g, &dec), 0);
    }

    #[test]
    fn center_on_subgraph_view() {
        let g = trees::path(10);
        let dec = min_degree_decomposition(&g);
        let mut mask = psep_graph::NodeMask::all(10);
        mask.remove(NodeId(9));
        let view = psep_graph::SubgraphView::new(&g, &mask);
        assert_center(&view, &dec);
    }
}
