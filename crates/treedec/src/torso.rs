//! Torsos: `G̃[X]` — the induced subgraph on a bag with every joint set
//! filled in as a clique (Section 2.1).
//!
//! The torso is what makes Lemma 5 work: each component of `G \ X`
//! attaches to `X` inside a single joint set, so in the torso the
//! attachment is a clique and cannot be split across components of
//! `X \ S` by any separator `S`.

use std::collections::HashMap;

use psep_graph::graph::{Graph, NodeId};
use psep_graph::view::GraphRef;

use crate::decomposition::TreeDecomposition;

/// The torso of bag `bag_idx`: a standalone graph over dense ids together
/// with the mapping back to original vertex ids.
///
/// Real edges keep their weights; fill-in edges (pairs sharing another
/// bag) get weight 1 — the torso is used combinatorially (for balanced
/// separation), never metrically.
#[derive(Clone, Debug)]
pub struct Torso {
    /// The torso graph with dense ids `0..bag.len()`.
    pub graph: Graph,
    /// `original[i]` is the original id of torso vertex `i`.
    pub original: Vec<NodeId>,
    /// Index of each original vertex in `original`.
    pub index_of: HashMap<NodeId, usize>,
}

impl Torso {
    /// Translates a torso vertex back to its original id.
    pub fn to_original(&self, v: NodeId) -> NodeId {
        self.original[v.index()]
    }
}

/// Builds the torso `G̃[X]` of bag `bag_idx` of `dec` over `g`
/// (restricted to the alive vertices of `g`).
pub fn torso<G: GraphRef>(g: &G, dec: &TreeDecomposition, bag_idx: usize) -> Torso {
    let members: Vec<NodeId> = dec
        .bag(bag_idx)
        .iter()
        .copied()
        .filter(|&v| g.contains_node(v))
        .collect();
    let index_of: HashMap<NodeId, usize> =
        members.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut t = Graph::new(members.len());
    // real edges
    for (i, &v) in members.iter().enumerate() {
        for e in g.neighbors(v) {
            if let Some(&j) = index_of.get(&e.to) {
                if i < j {
                    t.add_edge(NodeId::from_index(i), NodeId::from_index(j), e.weight);
                }
            }
        }
    }
    // fill-in: for every other bag Y, the joint set X ∩ Y becomes a clique
    for (yi, y) in dec.bags().iter().enumerate() {
        if yi == bag_idx {
            continue;
        }
        let joint: Vec<usize> = y.iter().filter_map(|v| index_of.get(v).copied()).collect();
        for (a, &ia) in joint.iter().enumerate() {
            for &ib in &joint[a + 1..] {
                let (u, w) = (NodeId::from_index(ia), NodeId::from_index(ib));
                if !t.has_edge(u, w) {
                    t.add_edge(u, w, 1);
                }
            }
        }
    }
    Torso {
        graph: t,
        original: members,
        index_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposition::TreeDecomposition;
    use psep_graph::generators::trees;
    use psep_graph::minors::is_clique;

    #[test]
    fn torso_fills_joint_sets() {
        // star with center 0: decomposition with bag X = {1,2,3} (leaves)
        // and bags {0,1,2,3}; joint set {1,2,3} must become a clique.
        let g = trees::star(4);
        let dec = TreeDecomposition::new(
            vec![
                vec![NodeId(1), NodeId(2), NodeId(3)],
                vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)],
            ],
            vec![(0, 1)],
        );
        let t = torso(&g, &dec, 0);
        assert_eq!(t.graph.num_nodes(), 3);
        let all: Vec<NodeId> = t.graph.nodes().collect();
        assert!(is_clique(&t.graph, &all));
    }

    #[test]
    fn torso_keeps_real_edge_weights() {
        let mut g = psep_graph::Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1), 7);
        g.add_edge(NodeId(1), NodeId(2), 1);
        let dec = TreeDecomposition::new(
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1), NodeId(2)]],
            vec![(0, 1)],
        );
        let t = torso(&g, &dec, 0);
        let i0 = t.index_of[&NodeId(0)];
        let i1 = t.index_of[&NodeId(1)];
        assert_eq!(
            t.graph
                .edge_weight(NodeId::from_index(i0), NodeId::from_index(i1)),
            Some(7)
        );
    }

    #[test]
    fn torso_of_trivial_bag_is_whole_graph() {
        let g = trees::path(5);
        let dec = TreeDecomposition::trivial(&g);
        let t = torso(&g, &dec, 0);
        assert_eq!(t.graph.num_nodes(), 5);
        assert_eq!(t.graph.num_edges(), 4);
    }
}
