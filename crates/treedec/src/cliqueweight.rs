//! Clique-weights and Lemma 5.
//!
//! A clique-weight `(𝒦, ω)` generalizes vertex weights: the weight of a
//! subgraph `A` is the sum of `ω(K)` over cliques `K ∈ 𝒦` that intersect
//! `A`. Lemma 5 builds a clique-weight on a center torso `C̃` such that
//! any **half-size separator** of `C̃` (components of weight ≤ `f(C̃)/2`)
//! is an `n/2`-separator of the whole graph.

use psep_graph::components::components;
use psep_graph::graph::NodeId;
use psep_graph::view::{GraphRef, NodeMask, SubgraphView};

use crate::torso::Torso;

/// A clique-weight `(𝒦, ω)`: a list of cliques with non-negative weights,
/// over the vertex ids of some host graph.
#[derive(Clone, Debug, Default)]
pub struct CliqueWeight {
    cliques: Vec<(Vec<NodeId>, f64)>,
}

impl CliqueWeight {
    /// Empty clique-weight.
    pub fn new() -> Self {
        CliqueWeight::default()
    }

    /// A plain vertex-weight: singleton clique `{v}` with weight `w` for
    /// each `(v, w)` pair.
    pub fn from_vertex_weights(weights: impl IntoIterator<Item = (NodeId, f64)>) -> Self {
        CliqueWeight {
            cliques: weights.into_iter().map(|(v, w)| (vec![v], w)).collect(),
        }
    }

    /// Adds clique `k` with weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w < 0` or `k` is empty.
    pub fn add(&mut self, mut k: Vec<NodeId>, w: f64) {
        assert!(w >= 0.0, "clique weights must be non-negative");
        assert!(!k.is_empty(), "cliques must be non-empty");
        k.sort_unstable();
        k.dedup();
        self.cliques.push((k, w));
    }

    /// The cliques and their weights.
    pub fn cliques(&self) -> &[(Vec<NodeId>, f64)] {
        &self.cliques
    }

    /// Total weight `f(G)` = sum of all clique weights (every clique
    /// intersects the whole graph).
    pub fn total(&self) -> f64 {
        self.cliques.iter().map(|(_, w)| w).sum()
    }

    /// Weight `f(A)` of a vertex set `A`: the sum of `ω(K)` over cliques
    /// intersecting `A`.
    pub fn weight_of(&self, a: &[NodeId]) -> f64 {
        let set: std::collections::HashSet<NodeId> = a.iter().copied().collect();
        self.cliques
            .iter()
            .filter(|(k, _)| k.iter().any(|v| set.contains(v)))
            .map(|(_, w)| w)
            .sum()
    }

    /// Whether removing `sep` from `g` leaves only components of weight
    /// at most `total() / 2` — i.e. whether `sep` is a *half-size
    /// separator* w.r.t. this clique-weight.
    pub fn is_half_size_separator<G: GraphRef>(&self, g: &G, sep: &[NodeId]) -> bool {
        let mut mask = NodeMask::from_nodes(g.universe(), g.node_iter());
        mask.remove_all(sep.iter().copied());
        let half = self.total() / 2.0;
        if mask.is_empty() {
            return true;
        }
        // need the base graph to build a view; work generically instead:
        let comps = components_with_mask(g, &mask);
        comps.iter().all(|c| self.weight_of(c) <= half + 1e-9)
    }
}

fn components_with_mask<G: GraphRef>(g: &G, mask: &NodeMask) -> Vec<Vec<NodeId>> {
    let n = g.universe();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    let mut stack = Vec::new();
    for v in mask.iter() {
        if seen[v.index()] {
            continue;
        }
        let mut comp = Vec::new();
        seen[v.index()] = true;
        stack.push(v);
        while let Some(u) = stack.pop() {
            comp.push(u);
            for e in g.neighbors(u) {
                if mask.contains(e.to) && !seen[e.to.index()] {
                    seen[e.to.index()] = true;
                    stack.push(e.to);
                }
            }
        }
        out.push(comp);
    }
    out
}

/// Lemma 5: builds the clique-weight for the torso of a center bag `C`
/// of `g` such that every half-size separator of the torso leaves
/// components of at most `n/2` vertices in `g`.
///
/// Construction: each vertex of `C` gets a singleton clique of weight 1;
/// each connected component `D` of `g \ C` contributes the clique
/// `N(D) ∩ C` (a subset of a joint set, hence a torso clique) with weight
/// `|D|`. Total weight is `n`. The returned clique-weight uses **torso
/// ids** (dense ids of `torso.graph`).
pub fn lemma5_clique_weight<G: GraphRef>(g: &G, torso: &Torso) -> CliqueWeight {
    let mut cw = CliqueWeight::new();
    for i in 0..torso.graph.num_nodes() {
        cw.add(vec![NodeId::from_index(i)], 1.0);
    }
    // components of g \ C
    let n = g.universe();
    let in_c: Vec<bool> = {
        let mut m = vec![false; n];
        for &v in &torso.original {
            m[v.index()] = true;
        }
        m
    };
    let mut mask = NodeMask::none(n);
    for v in g.node_iter() {
        if !in_c[v.index()] {
            mask.insert(v);
        }
    }
    let comps = components_with_mask(g, &mask);
    for comp in comps {
        let mut attach: Vec<NodeId> = Vec::new();
        for &u in &comp {
            for e in g.neighbors(u) {
                if in_c[e.to.index()] {
                    attach.push(NodeId::from_index(torso.index_of[&e.to]));
                }
            }
        }
        attach.sort_unstable();
        attach.dedup();
        if !attach.is_empty() {
            cw.add(attach, comp.len() as f64);
        }
        // components with no attachment are already separated from C and
        // have ≤ n/2 vertices by the center property; they carry no weight.
    }
    cw
}

/// Greedily shrinks a half-size separator of `g` under `cw`: starting
/// from all of `g`'s vertices (trivially half-size), repeatedly drops a
/// vertex whose removal keeps the half-size property. The result is a
/// *minimal* half-size separator — pair it with
/// [`check_lemma5_conclusion`] to exercise the Lemma 5 implication with
/// a non-trivial separator.
pub fn greedy_half_size_separator<G: GraphRef>(g: &G, cw: &CliqueWeight) -> Vec<NodeId> {
    let mut sep: Vec<NodeId> = g.node_iter().collect();
    // try dropping vertices in decreasing id order (deterministic)
    let candidates: Vec<NodeId> = sep.iter().copied().rev().collect();
    for v in candidates {
        let trial: Vec<NodeId> = sep.iter().copied().filter(|&u| u != v).collect();
        if cw.is_half_size_separator(g, &trial) {
            sep = trial;
        }
    }
    sep
}

/// Checks the Lemma 5 *conclusion* for a concrete separator: given a
/// half-size separator `sep` of the torso (torso ids), removing the
/// corresponding original vertices from `g` leaves components of at most
/// `half` vertices.
pub fn check_lemma5_conclusion(
    g: &psep_graph::Graph,
    torso: &Torso,
    sep: &[NodeId],
    half: usize,
) -> bool {
    let originals: Vec<NodeId> = sep.iter().map(|&v| torso.to_original(v)).collect();
    let mut mask = NodeMask::all(g.num_nodes());
    mask.remove_all(originals);
    let view = SubgraphView::new(g, &mask);
    components(&view).iter().all(|c| c.len() <= half)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::center::center_bag;
    use crate::decomposition::TreeDecomposition;
    use crate::elimination::min_degree_decomposition;
    use crate::torso::torso;
    use psep_graph::generators::{ktree, trees};

    #[test]
    fn vertex_weights_reduce_to_sums() {
        let cw = CliqueWeight::from_vertex_weights([
            (NodeId(0), 1.0),
            (NodeId(1), 2.0),
            (NodeId(2), 4.0),
        ]);
        assert_eq!(cw.total(), 7.0);
        assert_eq!(cw.weight_of(&[NodeId(1), NodeId(2)]), 6.0);
        assert_eq!(cw.weight_of(&[]), 0.0);
    }

    #[test]
    fn overlapping_cliques_single_count() {
        let mut cw = CliqueWeight::new();
        cw.add(vec![NodeId(0), NodeId(1)], 5.0);
        // clique intersects both {0} and {1} but is counted once per set
        assert_eq!(cw.weight_of(&[NodeId(0)]), 5.0);
        assert_eq!(cw.weight_of(&[NodeId(1)]), 5.0);
        assert_eq!(cw.weight_of(&[NodeId(0), NodeId(1)]), 5.0);
    }

    #[test]
    fn lemma5_on_star_center() {
        // star: center bag {0}; components are leaves of size 1 each
        let g = trees::star(5);
        let dec = TreeDecomposition::new(
            vec![
                vec![NodeId(0)],
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(0), NodeId(2)],
                vec![NodeId(0), NodeId(3)],
                vec![NodeId(0), NodeId(4)],
            ],
            vec![(0, 1), (0, 2), (0, 3), (0, 4)],
        );
        let t = torso(&g, &dec, 0);
        let cw = lemma5_clique_weight(&g, &t);
        assert_eq!(cw.total(), 5.0); // 1 center + 4 leaves
                                     // removing the single torso vertex (the center) is a half-size
                                     // separator, and indeed separates g into singletons
        let sep = vec![NodeId(0)];
        assert!(cw.is_half_size_separator(&t.graph, &sep));
        assert!(check_lemma5_conclusion(&g, &t, &sep, g.num_nodes() / 2));
    }

    #[test]
    fn lemma5_half_size_implies_global_half_on_k_trees() {
        for seed in 0..4 {
            let kt = ktree::random_k_tree(40, 2, seed);
            let g = &kt.graph;
            let dec = min_degree_decomposition(g);
            let c = center_bag(g, &dec);
            let t = torso(g, &dec, c);
            let cw = lemma5_clique_weight(g, &t);
            // the whole torso bag is trivially a half-size separator of
            // itself; Lemma 5 then promises components ≤ n/2
            let sep: Vec<NodeId> = t.graph.nodes().collect();
            assert!(cw.is_half_size_separator(&t.graph, &sep));
            assert!(check_lemma5_conclusion(g, &t, &sep, g.num_nodes() / 2));
        }
    }

    #[test]
    fn greedy_half_size_is_small_and_implies_global_half() {
        for seed in 0..3 {
            let kt = ktree::random_k_tree(60, 3, seed);
            let g = &kt.graph;
            let dec = min_degree_decomposition(g);
            let c = center_bag(g, &dec);
            let t = torso(g, &dec, c);
            let cw = lemma5_clique_weight(g, &t);
            let sep = greedy_half_size_separator(&t.graph, &cw);
            assert!(cw.is_half_size_separator(&t.graph, &sep));
            // the torso of a k-tree center bag has ≤ width+1 vertices, so
            // the minimal separator is at most that
            assert!(sep.len() <= dec.width() + 1);
            assert!(check_lemma5_conclusion(g, &t, &sep, g.num_nodes() / 2));
        }
    }

    #[test]
    fn lemma5_total_is_n() {
        let g = trees::random_tree(30, 9);
        let dec = min_degree_decomposition(&g);
        let c = center_bag(&g, &dec);
        let t = torso(&g, &dec, c);
        let cw = lemma5_clique_weight(&g, &t);
        assert_eq!(cw.total(), 30.0);
    }
}
