//! Tree decompositions from elimination orders: min-degree and min-fill
//! heuristics.
//!
//! Exact treewidth is NP-hard; these classical heuristics are exact on
//! chordal graphs (hence on the generated `k`-trees) and near-optimal on
//! the partial-`k`-tree and planar families the experiments use. The
//! measured widths are reported by experiment E9.

use std::collections::HashSet;

use psep_graph::graph::NodeId;
use psep_graph::view::GraphRef;

use crate::decomposition::TreeDecomposition;

/// Elimination heuristics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Heuristic {
    MinDegree,
    MinFill,
}

/// Tree decomposition via the **min-degree** elimination heuristic.
pub fn min_degree_decomposition<G: GraphRef>(g: &G) -> TreeDecomposition {
    eliminate(g, Heuristic::MinDegree)
}

/// Tree decomposition via the **min-fill** elimination heuristic
/// (slower, usually tighter width on non-chordal inputs).
pub fn min_fill_decomposition<G: GraphRef>(g: &G) -> TreeDecomposition {
    eliminate(g, Heuristic::MinFill)
}

/// Builds a tree decomposition from an explicit elimination order.
pub fn decomposition_from_order<G: GraphRef>(g: &G, order: &[NodeId]) -> TreeDecomposition {
    let n = g.universe();
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    // fill graph adjacency as hash sets
    let mut adj: Vec<HashSet<NodeId>> = vec![HashSet::new(); n];
    for u in g.node_iter() {
        for e in g.neighbors(u) {
            adj[u.index()].insert(e.to);
            adj[e.to.index()].insert(u);
        }
    }
    build_bags(order, &pos, adj)
}

fn eliminate<G: GraphRef>(g: &G, h: Heuristic) -> TreeDecomposition {
    psep_obs::counter!("treedec.eliminations").incr();
    let _span = psep_obs::span!("treedec_eliminate");
    let n = g.universe();
    let mut adj: Vec<HashSet<NodeId>> = vec![HashSet::new(); n];
    let mut alive: Vec<bool> = vec![false; n];
    let mut order: Vec<NodeId> = Vec::new();
    for u in g.node_iter() {
        alive[u.index()] = true;
        for e in g.neighbors(u) {
            adj[u.index()].insert(e.to);
        }
    }
    let alive_count = g.node_count();
    // Snapshot of the original adjacency for bag construction later: we
    // instead maintain the fill graph incrementally and record bags now.
    let mut full_fill: Vec<HashSet<NodeId>> = adj.clone();
    for _ in 0..alive_count {
        // pick next vertex
        let pick = g
            .node_iter()
            .filter(|v| alive[v.index()])
            .min_by_key(|&v| match h {
                Heuristic::MinDegree => (adj[v.index()].len(), v.index()),
                Heuristic::MinFill => fill_count(&adj, v),
            })
            .expect("alive vertex exists");
        order.push(pick);
        // connect neighbours (fill edges), remove pick
        let nbrs: Vec<NodeId> = adj[pick.index()].iter().copied().collect();
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if adj[a.index()].insert(b) {
                    adj[b.index()].insert(a);
                    full_fill[a.index()].insert(b);
                    full_fill[b.index()].insert(a);
                }
            }
        }
        for &a in &nbrs {
            adj[a.index()].remove(&pick);
        }
        adj[pick.index()].clear();
        alive[pick.index()] = false;
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    build_bags(&order, &pos, full_fill)
}

fn fill_count(adj: &[HashSet<NodeId>], v: NodeId) -> (usize, usize) {
    let nbrs: Vec<NodeId> = adj[v.index()].iter().copied().collect();
    let mut fill = 0;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if !adj[a.index()].contains(&b) {
                fill += 1;
            }
        }
    }
    (fill, v.index())
}

/// Builds bags from an elimination order over a (fill) adjacency: the bag
/// of `v` is `v` plus its later-eliminated fill-neighbours; each bag links
/// to the bag of the earliest-later member.
fn build_bags(
    order: &[NodeId],
    pos: &[usize],
    mut fill_adj: Vec<HashSet<NodeId>>,
) -> TreeDecomposition {
    // saturate the fill adjacency along the order (for the from-order
    // path; the heuristic path already passes a saturated fill graph,
    // and re-saturating it is a harmless no-op there).
    for &v in order {
        let later: Vec<NodeId> = fill_adj[v.index()]
            .iter()
            .copied()
            .filter(|u| pos[u.index()] > pos[v.index()])
            .collect();
        for (i, &a) in later.iter().enumerate() {
            for &b in &later[i + 1..] {
                if fill_adj[a.index()].insert(b) {
                    fill_adj[b.index()].insert(a);
                }
            }
        }
    }
    let mut bags: Vec<Vec<NodeId>> = Vec::with_capacity(order.len());
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // bag index by elimination position
    for (i, &v) in order.iter().enumerate() {
        let mut bag: Vec<NodeId> = fill_adj[v.index()]
            .iter()
            .copied()
            .filter(|u| pos[u.index()] > i)
            .collect();
        bag.push(v);
        bag.sort_unstable();
        bags.push(bag);
    }
    for (i, &v) in order.iter().enumerate() {
        // link to the earliest-later neighbour's bag
        let parent = fill_adj[v.index()]
            .iter()
            .copied()
            .filter(|u| pos[u.index()] > i)
            .min_by_key(|u| pos[u.index()]);
        if let Some(p) = parent {
            edges.push((i, pos[p.index()]));
        } else if i + 1 < order.len() {
            // isolated-at-elimination vertex: attach anywhere to keep a tree
            edges.push((i, i + 1));
        }
    }
    TreeDecomposition::new(bags, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_graph::generators::{grids, ktree, planar_families, trees};

    #[test]
    fn tree_has_width_one() {
        let g = trees::random_tree(40, 3);
        for dec in [min_degree_decomposition(&g), min_fill_decomposition(&g)] {
            dec.validate(&g).unwrap();
            assert_eq!(dec.width(), 1);
        }
    }

    #[test]
    fn k_tree_width_recovered_exactly() {
        for k in 1..=4 {
            let kt = ktree::random_k_tree(30, k, 11);
            let dec = min_degree_decomposition(&kt.graph);
            dec.validate(&kt.graph).unwrap();
            assert_eq!(dec.width(), k, "k = {k}");
        }
    }

    #[test]
    fn partial_k_tree_width_bounded() {
        let g = ktree::partial_k_tree(60, 3, 0.6, 5);
        let dec = min_fill_decomposition(&g);
        dec.validate(&g).unwrap();
        assert!(dec.width() <= 3, "width {} > 3", dec.width());
    }

    #[test]
    fn outerplanar_width_at_most_two() {
        let g = planar_families::random_outerplanar(25, 7);
        let dec = min_degree_decomposition(&g);
        dec.validate(&g).unwrap();
        assert!(dec.width() <= 2);
    }

    #[test]
    fn grid_width_reasonable() {
        let g = grids::grid2d(5, 5, 1);
        let dec = min_fill_decomposition(&g);
        dec.validate(&g).unwrap();
        // treewidth of a 5x5 grid is 5; heuristics may be slightly above
        assert!(dec.width() >= 5);
        assert!(dec.width() <= 8, "width {}", dec.width());
    }

    #[test]
    fn from_order_valid_on_cycle() {
        let g = trees::cycle(8);
        let order: Vec<NodeId> = g.nodes().collect();
        let dec = decomposition_from_order(&g, &order);
        dec.validate(&g).unwrap();
        assert!(dec.width() >= 2);
    }

    #[test]
    fn disconnected_graph_still_decomposes() {
        let mut g = psep_graph::Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        let dec = min_degree_decomposition(&g);
        dec.validate(&g).unwrap();
    }
}
