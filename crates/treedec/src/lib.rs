#![warn(missing_docs)]
//! Tree and path decompositions for the `path-separators` workspace.
//!
//! This crate implements the structural machinery of Sections 2–3 of
//! Abraham & Gavoille (PODC 2006):
//!
//! * [`TreeDecomposition`] with full axiom checking and width
//!   computation; construction from elimination orders
//!   ([`elimination`]) or from generator-provided bags;
//! * the **center bag** of Lemma 1 ([`center::center_bag`]): a bag whose
//!   removal leaves components of at most `n/2` vertices;
//! * **torsos** ([`torso::torso`]): bags with joint sets filled in as
//!   cliques — the operation `G̃[X]` that makes Lemma 5 work;
//! * [`PathDecomposition`]s and [`Vortex`]es (bounded-pathwidth graphs
//!   glued onto a face perimeter) with [`vortexpath::VortexPath`]
//!   (Definition 2) and its projection;
//! * **clique-weights** ([`cliqueweight::CliqueWeight`], Lemma 5): the
//!   generalized weighting under which half-size separators of a center
//!   torso are global `n/2`-separators.

pub mod center;
pub mod cliqueweight;
pub mod decomposition;
pub mod elimination;
pub mod exact;
pub mod pathdec;
pub mod torso;
pub mod vortexpath;

pub use center::center_bag;
pub use cliqueweight::CliqueWeight;
pub use decomposition::TreeDecomposition;
pub use elimination::{min_degree_decomposition, min_fill_decomposition};
pub use exact::{exact_decomposition, exact_treewidth, treewidth_lower_bound};
pub use pathdec::{PathDecomposition, Vortex};
pub use vortexpath::VortexPath;
