//! Vortex-paths (Definition 2) and their projections.
//!
//! A vortex-path decomposes a walk through an almost-embedded graph into
//! *segments* `Q_i` (paths wholly in the embedded part) alternating with
//! *bag pairs* `(X_i, Y_i)` of distinct vortices: the walk enters vortex
//! `W_i` at the perimeter vertex of `X_i` and leaves it at the perimeter
//! vertex of `Y_i`. Its **projection** replaces each vortex traversal by
//! a virtual edge between the two perimeter vertices, giving a curve on
//! the surface.
//!
//! This module implements the construction the paper describes below
//! Definition 2: walking along a concrete path `P` and grouping its
//! vortex excursions, with the guarantee that consecutive excursions use
//! pairwise distinct vortices.

use psep_graph::graph::NodeId;

use crate::pathdec::Vortex;

/// One vortex traversal of a vortex-path: the vortex index (into the
/// caller's vortex list) and the entry/exit bag indices within it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VortexHop {
    /// Which vortex is traversed.
    pub vortex: usize,
    /// Bag index of the entry bag `X` (its perimeter vertex is where the
    /// path first meets the vortex).
    pub entry_bag: usize,
    /// Bag index of the exit bag `Y`.
    pub exit_bag: usize,
}

/// A vortex-path `𝒱 = Q_0 ∪ X_1 ∪ Y_1 ∪ Q_1 ∪ ⋯ ∪ Q_t` (Definition 2).
#[derive(Clone, Debug, Default)]
pub struct VortexPath {
    /// Segments `Q_0, …, Q_t`: paths wholly in the embedded part. A
    /// segment may be a single vertex; `segments.len() == hops.len() + 1`.
    pub segments: Vec<Vec<NodeId>>,
    /// Vortex traversals between consecutive segments.
    pub hops: Vec<VortexHop>,
}

/// Why [`VortexPath::from_path`] failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VortexPathError {
    /// The path's endpoints must lie in the embedded part.
    EndpointInVortex(NodeId),
    /// A vertex belongs to more than one vortex (vortices must be
    /// pairwise disjoint).
    OverlappingVortices(NodeId),
}

impl std::fmt::Display for VortexPathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VortexPathError::EndpointInVortex(v) => {
                write!(f, "path endpoint {v:?} lies inside a vortex")
            }
            VortexPathError::OverlappingVortices(v) => {
                write!(f, "vertex {v:?} belongs to two vortices")
            }
        }
    }
}

impl std::error::Error for VortexPathError {}

impl VortexPath {
    /// Constructs the vortex-path of a concrete path `p` with respect to
    /// the pairwise disjoint `vortices`, following the walk construction
    /// of the paper: walk along `p`; on meeting the first perimeter
    /// vertex `x_1` of some vortex `W`, close segment `Q_0`, then jump to
    /// the *last* perimeter vertex `y_1` of `W` on `p`, and continue.
    ///
    /// Non-perimeter vortex vertices on `p` are treated as interior to
    /// their excursion (they are skipped along with it).
    ///
    /// # Errors
    ///
    /// Fails if an endpoint of `p` lies inside a vortex or if vortices
    /// overlap on a path vertex.
    pub fn from_path(p: &[NodeId], vortices: &[Vortex]) -> Result<Self, VortexPathError> {
        // vertex -> owning vortex
        let mut owner: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
        for (vi, vx) in vortices.iter().enumerate() {
            for u in vx.vertices() {
                if let Some(prev) = owner.insert(u, vi) {
                    if prev != vi {
                        return Err(VortexPathError::OverlappingVortices(u));
                    }
                }
            }
        }
        let in_vortex = |v: NodeId| owner.get(&v).copied();
        let is_perimeter = |v: NodeId| in_vortex(v).is_some_and(|vi| vortices[vi].is_perimeter(v));
        if let Some(&first) = p.first() {
            if in_vortex(first).is_some() && !is_perimeter(first) {
                return Err(VortexPathError::EndpointInVortex(first));
            }
        }
        if let Some(&last) = p.last() {
            if in_vortex(last).is_some() && !is_perimeter(last) {
                return Err(VortexPathError::EndpointInVortex(last));
            }
        }

        let mut segments: Vec<Vec<NodeId>> = Vec::new();
        let mut hops: Vec<VortexHop> = Vec::new();
        let mut cur_seg: Vec<NodeId> = Vec::new();
        let mut i = 0usize;
        while i < p.len() {
            let v = p[i];
            match in_vortex(v).filter(|_| is_perimeter(v)) {
                None => {
                    // embedded-part vertex (interior vortex vertices are
                    // only reachable inside an excursion, handled below)
                    cur_seg.push(v);
                    i += 1;
                }
                Some(w) => {
                    // entering vortex w at perimeter vertex v: find the
                    // last index j ≥ i with p[j] a perimeter vertex of w
                    let mut j = i;
                    for (k, &u) in p.iter().enumerate().skip(i) {
                        if in_vortex(u) == Some(w) && is_perimeter(u) {
                            j = k;
                        }
                    }
                    let x = p[i];
                    let y = p[j];
                    cur_seg.push(x);
                    segments.push(std::mem::take(&mut cur_seg));
                    let vx = &vortices[w];
                    hops.push(VortexHop {
                        vortex: w,
                        entry_bag: vx.perimeter_index(x).expect("x is perimeter"),
                        exit_bag: vx.perimeter_index(y).expect("y is perimeter"),
                    });
                    cur_seg.push(y);
                    i = j + 1;
                }
            }
        }
        segments.push(cur_seg);
        Ok(VortexPath { segments, hops })
    }

    /// Number of vortex traversals `t`.
    pub fn num_hops(&self) -> usize {
        self.hops.len()
    }

    /// The projection `Q_0 ∪ e_1 ∪ Q_1 ∪ ⋯`: the segment vertices
    /// concatenated, with each vortex traversal contracted to the pair of
    /// perimeter vertices it connects (the virtual edge `e_i`).
    pub fn projection(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for seg in &self.segments {
            for &v in seg {
                if out.last() != Some(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// All vertices of the vortex-path: segment vertices plus every
    /// vertex of each traversed entry/exit bag — the set `P_s` adds to
    /// the separator in Step 2/3 of the paper's construction.
    pub fn vertices(&self, vortices: &[Vortex]) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.segments.iter().flatten().copied().collect();
        for hop in &self.hops {
            let vx = &vortices[hop.vortex];
            out.extend_from_slice(&vx.bags()[hop.entry_bag]);
            out.extend_from_slice(&vx.bags()[hop.exit_bag]);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Checks the Definition 2 condition that traversed vortices are
    /// pairwise distinct.
    pub fn vortices_distinct(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.hops.iter().all(|h| seen.insert(h.vortex))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Host layout: embedded vertices 0..=4, vortex A = {10,11,12}
    /// (perimeter 10,11,12), vortex B = {20,21} (perimeter 20,21).
    fn vortices() -> Vec<Vortex> {
        let a = Vortex::new(
            vec![NodeId(10), NodeId(11), NodeId(12)],
            vec![
                vec![NodeId(10), NodeId(11)],
                vec![NodeId(11), NodeId(10)],
                vec![NodeId(12), NodeId(11)],
            ],
        )
        .unwrap();
        let b = Vortex::new(
            vec![NodeId(20), NodeId(21)],
            vec![vec![NodeId(20)], vec![NodeId(21)]],
        )
        .unwrap();
        vec![a, b]
    }

    #[test]
    fn path_without_vortices_is_one_segment() {
        let vs = vortices();
        let p = [NodeId(0), NodeId(1), NodeId(2)];
        let vp = VortexPath::from_path(&p, &vs).unwrap();
        assert_eq!(vp.num_hops(), 0);
        assert_eq!(vp.segments.len(), 1);
        assert_eq!(vp.projection(), p.to_vec());
    }

    #[test]
    fn single_excursion_groups_entry_and_exit() {
        let vs = vortices();
        // enter A at 10, wander (11), leave at 12
        let p = [NodeId(0), NodeId(10), NodeId(11), NodeId(12), NodeId(3)];
        let vp = VortexPath::from_path(&p, &vs).unwrap();
        assert_eq!(vp.num_hops(), 1);
        assert_eq!(vp.hops[0].vortex, 0);
        assert_eq!(vp.hops[0].entry_bag, 0); // bag of 10
        assert_eq!(vp.hops[0].exit_bag, 2); // bag of 12
        assert_eq!(vp.segments.len(), 2);
        assert_eq!(vp.segments[0], vec![NodeId(0), NodeId(10)]);
        assert_eq!(vp.segments[1], vec![NodeId(12), NodeId(3)]);
        // projection skips the interior vertex 11
        assert_eq!(
            vp.projection(),
            vec![NodeId(0), NodeId(10), NodeId(12), NodeId(3)]
        );
        assert!(vp.vortices_distinct());
    }

    #[test]
    fn re_entry_into_same_vortex_is_one_hop() {
        let vs = vortices();
        // touches A at 10, leaves to 1, re-enters at 11, exits at 12:
        // the construction takes y = last perimeter vertex of A (12)
        let p = [
            NodeId(0),
            NodeId(10),
            NodeId(1),
            NodeId(11),
            NodeId(12),
            NodeId(4),
        ];
        let vp = VortexPath::from_path(&p, &vs).unwrap();
        assert_eq!(vp.num_hops(), 1);
        assert_eq!(vp.hops[0].entry_bag, 0);
        assert_eq!(vp.hops[0].exit_bag, 2);
        assert!(vp.vortices_distinct());
    }

    #[test]
    fn two_distinct_vortices() {
        let vs = vortices();
        let p = [
            NodeId(0),
            NodeId(10),
            NodeId(12),
            NodeId(2),
            NodeId(20),
            NodeId(21),
            NodeId(4),
        ];
        let vp = VortexPath::from_path(&p, &vs).unwrap();
        assert_eq!(vp.num_hops(), 2);
        assert_eq!(vp.hops[0].vortex, 0);
        assert_eq!(vp.hops[1].vortex, 1);
        assert!(vp.vortices_distinct());
        // vertices() includes the bag contents of entry/exit bags
        let verts = vp.vertices(&vs);
        assert!(verts.contains(&NodeId(11))); // bag X_1 = {10, 11}
    }

    #[test]
    fn rejects_endpoint_inside_vortex() {
        let vs = vortices();
        let p = [NodeId(11), NodeId(0)];
        // 11 is a perimeter vertex, allowed; interior-only vertices are
        // those in bags but not on the perimeter — make one:
        let c = Vortex::new(vec![NodeId(30)], vec![vec![NodeId(30), NodeId(31)]]).unwrap();
        let vs2 = vec![c];
        let bad = [NodeId(31), NodeId(0)];
        assert!(VortexPath::from_path(&p, &vs).is_ok());
        let err = VortexPath::from_path(&bad, &vs2).unwrap_err();
        assert_eq!(err, VortexPathError::EndpointInVortex(NodeId(31)));
    }

    #[test]
    fn rejects_overlapping_vortices() {
        let a = Vortex::new(vec![NodeId(1)], vec![vec![NodeId(1)]]).unwrap();
        let b = Vortex::new(vec![NodeId(1)], vec![vec![NodeId(1)]]).unwrap();
        let err = VortexPath::from_path(&[NodeId(0)], &[a, b]).unwrap_err();
        assert_eq!(err, VortexPathError::OverlappingVortices(NodeId(1)));
    }
}
