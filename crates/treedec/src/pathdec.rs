//! Path decompositions and vortices (Section 2.1).
//!
//! A **vortex** is a graph with a distinguished *perimeter* sequence
//! `u_1, …, u_t` and a path decomposition `X_1, …, X_t` with `u_i ∈ X_i`.
//! In the Robertson–Seymour structure theorem, vortices are the bounded
//! pathwidth pieces glued onto faces of the embedded part of an
//! almost-embeddable graph.

use psep_graph::graph::NodeId;
use psep_graph::view::GraphRef;

use crate::decomposition::{DecompositionError, TreeDecomposition};

/// A path decomposition: a tree decomposition whose tree is a path
/// `X_1 − X_2 − ⋯ − X_t` (bags in order).
#[derive(Clone, Debug)]
pub struct PathDecomposition {
    bags: Vec<Vec<NodeId>>,
}

impl PathDecomposition {
    /// Builds a path decomposition from ordered bags (sorted internally).
    pub fn new(mut bags: Vec<Vec<NodeId>>) -> Self {
        for bag in &mut bags {
            bag.sort_unstable();
            bag.dedup();
        }
        PathDecomposition { bags }
    }

    /// The ordered bags.
    pub fn bags(&self) -> &[Vec<NodeId>] {
        &self.bags
    }

    /// Number of bags.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// Whether there are no bags.
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// Width: `max |bag| − 1`.
    pub fn width(&self) -> usize {
        self.bags
            .iter()
            .map(|b| b.len())
            .max()
            .unwrap_or(0)
            .saturating_sub(1)
    }

    /// Converts to a [`TreeDecomposition`] whose tree is the bag path.
    pub fn to_tree_decomposition(&self) -> TreeDecomposition {
        let edges = (0..self.bags.len().saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        TreeDecomposition::new(self.bags.clone(), edges)
    }

    /// Validates the path-decomposition axioms against `g`.
    ///
    /// # Errors
    ///
    /// Returns the first violated axiom (see [`DecompositionError`]).
    pub fn validate<G: GraphRef>(&self, g: &G) -> Result<(), DecompositionError> {
        self.to_tree_decomposition().validate(g)
    }
}

/// A vortex: a vertex set of a host graph with a perimeter sequence
/// `u_1, …, u_t` and a path decomposition whose `i`-th bag contains
/// `u_i` (Section 2.1). Bags refer to host-graph vertex ids.
#[derive(Clone, Debug)]
pub struct Vortex {
    perimeter: Vec<NodeId>,
    dec: PathDecomposition,
}

/// Why a [`Vortex`] failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VortexError {
    /// Perimeter and bag counts differ.
    LengthMismatch,
    /// Perimeter vertices are not distinct.
    DuplicatePerimeter(NodeId),
    /// `u_i ∉ X_i`.
    PerimeterNotInBag(usize),
    /// The underlying path decomposition violates an axiom.
    BadDecomposition(DecompositionError),
}

impl std::fmt::Display for VortexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VortexError::LengthMismatch => write!(f, "perimeter and bag counts differ"),
            VortexError::DuplicatePerimeter(v) => {
                write!(f, "duplicate perimeter vertex {v:?}")
            }
            VortexError::PerimeterNotInBag(i) => {
                write!(f, "perimeter vertex u_{i} not in bag X_{i}")
            }
            VortexError::BadDecomposition(e) => write!(f, "bad path decomposition: {e}"),
        }
    }
}

impl std::error::Error for VortexError {}

impl Vortex {
    /// Builds a vortex from its perimeter and ordered bags.
    ///
    /// # Errors
    ///
    /// Returns a [`VortexError`] if the structural conditions fail
    /// (graph-dependent axioms are checked by [`Vortex::validate`]).
    pub fn new(perimeter: Vec<NodeId>, bags: Vec<Vec<NodeId>>) -> Result<Self, VortexError> {
        if perimeter.len() != bags.len() {
            return Err(VortexError::LengthMismatch);
        }
        let mut seen = std::collections::HashSet::new();
        for &u in &perimeter {
            if !seen.insert(u) {
                return Err(VortexError::DuplicatePerimeter(u));
            }
        }
        let dec = PathDecomposition::new(bags);
        for (i, u) in perimeter.iter().enumerate() {
            if dec.bags()[i].binary_search(u).is_err() {
                return Err(VortexError::PerimeterNotInBag(i));
            }
        }
        Ok(Vortex { perimeter, dec })
    }

    /// The perimeter sequence `u_1, …, u_t`.
    pub fn perimeter(&self) -> &[NodeId] {
        &self.perimeter
    }

    /// The ordered bags.
    pub fn bags(&self) -> &[Vec<NodeId>] {
        self.dec.bags()
    }

    /// Vortex width = width of its path decomposition.
    pub fn width(&self) -> usize {
        self.dec.width()
    }

    /// All vertices of the vortex (union of bags), sorted.
    pub fn vertices(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.dec.bags().iter().flatten().copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether `v` is one of the perimeter vertices.
    pub fn is_perimeter(&self, v: NodeId) -> bool {
        self.perimeter.contains(&v)
    }

    /// Index of `v` in the perimeter, if any.
    pub fn perimeter_index(&self, v: NodeId) -> Option<usize> {
        self.perimeter.iter().position(|&u| u == v)
    }

    /// Validates the vortex against the subgraph of `g` induced by the
    /// vortex vertices (the path-decomposition axioms must hold for the
    /// vortex-internal edges).
    ///
    /// # Errors
    ///
    /// Returns [`VortexError::BadDecomposition`] if the axioms fail.
    pub fn validate<G: GraphRef>(&self, g: &G) -> Result<(), VortexError> {
        let verts = self.vertices();
        let vset: std::collections::HashSet<NodeId> = verts.iter().copied().collect();
        // project g onto vortex vertices: a tiny adapter view
        struct Induced<'a, G: GraphRef> {
            g: &'a G,
            set: &'a std::collections::HashSet<NodeId>,
        }
        impl<G: GraphRef> GraphRef for Induced<'_, G> {
            fn universe(&self) -> usize {
                self.g.universe()
            }
            fn contains_node(&self, v: NodeId) -> bool {
                self.set.contains(&v) && self.g.contains_node(v)
            }
            fn neighbors(&self, v: NodeId) -> impl Iterator<Item = psep_graph::Edge> + '_ {
                self.g.neighbors(v).filter(|e| self.set.contains(&e.to))
            }
            fn node_count(&self) -> usize {
                self.set.len()
            }
            fn node_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
                self.set.iter().copied()
            }
        }
        let view = Induced { g, set: &vset };
        self.dec
            .validate(&view)
            .map_err(VortexError::BadDecomposition)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psep_graph::Graph;

    /// A small "fan vortex": perimeter 0,1,2 on a path, with interior
    /// vertex 3 adjacent to all of them.
    fn fan_vortex_graph() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(2), 1);
        g.add_edge(NodeId(3), NodeId(0), 1);
        g.add_edge(NodeId(3), NodeId(1), 1);
        g.add_edge(NodeId(3), NodeId(2), 1);
        g
    }

    #[test]
    fn valid_vortex() {
        let g = fan_vortex_graph();
        let v = Vortex::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![
                vec![NodeId(0), NodeId(3)],
                vec![NodeId(1), NodeId(3), NodeId(0)],
                vec![NodeId(2), NodeId(3), NodeId(1)],
            ],
        )
        .unwrap();
        assert_eq!(v.width(), 2);
        v.validate(&g).unwrap();
        assert!(v.is_perimeter(NodeId(1)));
        assert!(!v.is_perimeter(NodeId(3)));
        assert_eq!(v.perimeter_index(NodeId(2)), Some(2));
    }

    #[test]
    fn rejects_length_mismatch() {
        let err = Vortex::new(vec![NodeId(0)], vec![]).unwrap_err();
        assert_eq!(err, VortexError::LengthMismatch);
    }

    #[test]
    fn rejects_duplicate_perimeter() {
        let err = Vortex::new(
            vec![NodeId(0), NodeId(0)],
            vec![vec![NodeId(0)], vec![NodeId(0)]],
        )
        .unwrap_err();
        assert_eq!(err, VortexError::DuplicatePerimeter(NodeId(0)));
    }

    #[test]
    fn rejects_perimeter_outside_bag() {
        let err = Vortex::new(
            vec![NodeId(0), NodeId(1)],
            vec![vec![NodeId(0)], vec![NodeId(0)]],
        )
        .unwrap_err();
        assert_eq!(err, VortexError::PerimeterNotInBag(1));
    }

    #[test]
    fn detects_broken_axioms() {
        let g = fan_vortex_graph();
        // bags miss the edge {3, 2}
        let v = Vortex::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            vec![
                vec![NodeId(0), NodeId(3)],
                vec![NodeId(1), NodeId(3), NodeId(0)],
                vec![NodeId(2), NodeId(1)],
            ],
        )
        .unwrap();
        assert!(matches!(
            v.validate(&g),
            Err(VortexError::BadDecomposition(_))
        ));
    }

    #[test]
    fn path_decomposition_width_and_convert() {
        let pd = PathDecomposition::new(vec![
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(1), NodeId(2), NodeId(3)],
        ]);
        assert_eq!(pd.width(), 2);
        let td = pd.to_tree_decomposition();
        assert_eq!(td.num_bags(), 2);
        assert_eq!(td.tree_edges(), &[(0, 1)]);
    }
}
